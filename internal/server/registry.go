// Package server is the network-manager daemon: a multi-tenant HTTP
// service hosting named wsan networks and running the expensive pipeline
// operations — schedule generation, simulation, convergence runs, and
// management-loop iterations — as asynchronous jobs on a bounded worker
// pool. Completed outputs land in a content-addressed artifact store keyed
// by the producing request, so identical submissions are cache hits.
//
// The package sits entirely on the public wsan facade (plus the obs layer
// it shares with the rest of the pipeline); it is the service skin of the
// library, not a second implementation.
package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"wsan"
)

// netEntry is one hosted network: the immutable wsan.Network plus the
// exact survey JSON its artifacts embed.
type netEntry struct {
	// Name is the tenant-chosen handle.
	Name string
	// Hash identifies the network content (survey bytes + channel count +
	// options) for artifact addressing.
	Hash string
	// Net is the derived operating network. wsan.Network is immutable after
	// construction and safe for concurrent use, so every job on this entry
	// shares it without locking.
	Net *wsan.Network
	// Survey is the canonical testbed JSON (what gen-schedule writes as
	// survey.json).
	Survey []byte
	// Channels is the physical channel list the network operates on.
	Channels []int
	// Created is the registration time.
	Created time.Time
}

// CreateNetworkRequest is the POST /networks body. Exactly one of Preset
// and Testbed selects the topology source.
type CreateNetworkRequest struct {
	// Name is the handle jobs are submitted under. Required.
	Name string `json:"name"`
	// Preset generates a synthetic testbed ("indriya" or "wustl").
	Preset string `json:"preset,omitempty"`
	// TopoSeed drives preset generation (default 1).
	TopoSeed int64 `json:"toposeed,omitempty"`
	// Testbed is an uploaded topology JSON document (the wsan survey.json
	// format), used instead of a preset.
	Testbed json.RawMessage `json:"testbed,omitempty"`
	// Channels is the number of channels to operate on (default 4).
	Channels int `json:"channels,omitempty"`
	// PRRThreshold overrides the link-selection threshold PRR_t (default 0.9).
	PRRThreshold float64 `json:"prrThreshold,omitempty"`
	// AccessPoints overrides how many access points are selected (default 2).
	AccessPoints int `json:"accessPoints,omitempty"`
}

// NetworkView is the network description the HTTP API serves.
type NetworkView struct {
	Name          string    `json:"name"`
	Hash          string    `json:"hash"`
	Nodes         int       `json:"nodes"`
	Channels      []int     `json:"channels"`
	AccessPoints  []int     `json:"accessPoints"`
	CommEdges     int       `json:"commEdges"`
	ReuseDiameter int       `json:"reuseDiameter"`
	Created       time.Time `json:"created"`
}

// view builds the API description of an entry.
func (e *netEntry) view() NetworkView {
	return NetworkView{
		Name:          e.Name,
		Hash:          e.Hash,
		Nodes:         len(e.Net.Testbed().Nodes),
		Channels:      e.Net.Channels(),
		AccessPoints:  e.Net.AccessPoints(),
		CommEdges:     e.Net.CommEdges(),
		ReuseDiameter: e.Net.ReuseDiameter(),
		Created:       e.Created,
	}
}

// errExists marks a name collision on network creation (HTTP 409).
var errExists = errors.New("already exists")

// registry holds the hosted networks. Safe for concurrent use.
type registry struct {
	mu   sync.RWMutex
	nets map[string]*netEntry
}

func newRegistry() *registry { return &registry{nets: make(map[string]*netEntry)} }

// create builds a network from the request and registers it under its name.
func (r *registry) create(req CreateNetworkRequest) (*netEntry, error) {
	if req.Name == "" {
		return nil, fmt.Errorf("network name is required")
	}
	if req.Channels == 0 {
		req.Channels = 4
	}
	if req.Channels < 1 || req.Channels > wsan.NumChannels {
		return nil, fmt.Errorf("channels must be in [1, %d]", wsan.NumChannels)
	}
	var tb *wsan.Testbed
	var err error
	switch {
	case req.Preset != "" && len(req.Testbed) > 0:
		return nil, fmt.Errorf("preset and testbed are mutually exclusive")
	case req.Preset != "":
		seed := req.TopoSeed
		if seed == 0 {
			seed = 1
		}
		switch req.Preset {
		case "indriya":
			tb, err = wsan.GenerateIndriya(seed)
		case "wustl":
			tb, err = wsan.GenerateWUSTL(seed)
		default:
			return nil, fmt.Errorf("unknown preset %q (want indriya or wustl)", req.Preset)
		}
	case len(req.Testbed) > 0:
		tb, err = wsan.LoadTestbed(bytes.NewReader(req.Testbed))
	default:
		return nil, fmt.Errorf("either preset or testbed is required")
	}
	if err != nil {
		return nil, err
	}
	var opts []wsan.NetworkOption
	if req.PRRThreshold != 0 {
		opts = append(opts, wsan.WithPRRThreshold(req.PRRThreshold))
	}
	if req.AccessPoints != 0 {
		opts = append(opts, wsan.WithAccessPoints(req.AccessPoints))
	}
	net, err := wsan.NewNetwork(tb, req.Channels, opts...)
	if err != nil {
		return nil, err
	}
	// Canonical survey bytes: re-encode the testbed so uploaded and
	// generated topologies address artifacts identically.
	var survey bytes.Buffer
	if err := wsan.SaveTestbed(tb, &survey); err != nil {
		return nil, err
	}
	h := sha256.New()
	h.Write(survey.Bytes())
	fmt.Fprintf(h, "|ch=%d|prrt=%g|aps=%d", req.Channels, req.PRRThreshold, req.AccessPoints)
	e := &netEntry{
		Name:     req.Name,
		Hash:     hex.EncodeToString(h.Sum(nil)),
		Net:      net,
		Survey:   survey.Bytes(),
		Channels: net.Channels(),
		Created:  time.Now(),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nets[e.Name]; ok {
		return nil, fmt.Errorf("network %q %w", e.Name, errExists)
	}
	r.nets[e.Name] = e
	return e, nil
}

// get looks a network up by name.
func (r *registry) get(name string) (*netEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.nets[name]
	return e, ok
}

// remove deregisters a network; jobs already running keep their references.
func (r *registry) remove(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nets[name]; !ok {
		return false
	}
	delete(r.nets, name)
	return true
}

// list returns every hosted network's view, sorted by name.
func (r *registry) list() []NetworkView {
	r.mu.RLock()
	views := make([]NetworkView, 0, len(r.nets))
	for _, e := range r.nets {
		views = append(views, e.view())
	}
	r.mu.RUnlock()
	sort.Slice(views, func(i, j int) bool { return views[i].Name < views[j].Name })
	return views
}

// size returns the number of hosted networks.
func (r *registry) size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nets)
}
