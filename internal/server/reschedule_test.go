package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"wsan"
	"wsan/internal/schedule"
)

// fetchPart downloads one artifact part's exact bytes.
func fetchPart(t *testing.T, ts *httptest.Server, id, part string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/artifacts/" + id + "/" + part)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch %s/%s: status %d", id, part, resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// deltaDoc mirrors the delta.json document a reschedule job emits.
type deltaDoc struct {
	Op       string               `json:"op"`
	Flow     int                  `json:"flow"`
	Fallback string               `json:"fallback"`
	Evicted  []int                `json:"evicted"`
	Changes  []wsan.ScheduleDelta `json:"changes"`
}

// TestRescheduleJobs drives the reschedule job kind through a
// remove → add → reroute chain, checking each produced bundle stays a valid
// input for the next delta and for downstream job kinds.
func TestRescheduleJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueCap: 8})
	createTestNetwork(t, ts, "plant")
	base := mustSchedule(t, ts, "plant")

	baseFlows, err := wsan.LoadWorkload(bytes.NewReader(fetchPart(t, ts, base, "workload.json")))
	if err != nil {
		t.Fatal(err)
	}
	victim := baseFlows[2]

	// Remove one flow.
	v, code := submit(t, ts, "plant", KindReschedule, map[string]any{
		"artifact": base, "op": "remove", "flow": victim.ID,
	})
	if code != http.StatusAccepted {
		t.Fatalf("remove submit: status %d", code)
	}
	done := poll(t, ts, v.ID, 30*time.Second)
	if done.State != StateDone {
		t.Fatalf("remove job finished %v (%s)", done.State, done.Error)
	}
	removedArt := done.Artifact
	flows, err := wsan.LoadWorkload(bytes.NewReader(fetchPart(t, ts, removedArt, "workload.json")))
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != len(baseFlows)-1 {
		t.Fatalf("workload after remove has %d flows, want %d", len(flows), len(baseFlows)-1)
	}
	for _, f := range flows {
		if f.ID == victim.ID {
			t.Fatalf("flow %d still in workload after removal", victim.ID)
		}
	}
	var dd deltaDoc
	if err := json.Unmarshal(fetchPart(t, ts, removedArt, "delta.json"), &dd); err != nil {
		t.Fatal(err)
	}
	if dd.Op != "remove" || dd.Flow != victim.ID || len(dd.Changes) == 0 {
		t.Fatalf("unexpected delta.json: %+v", dd)
	}
	for _, c := range dd.Changes {
		if c.Kind != schedule.Removed {
			t.Fatalf("remove delta contains an addition: %+v", c)
		}
	}

	// Add the flow back under a fresh ID, on the removed bundle.
	v, code = submit(t, ts, "plant", KindReschedule, map[string]any{
		"artifact": removedArt, "op": "add", "flow": 99,
		"src": victim.Src, "dst": victim.Dst,
		"period": victim.Period, "deadline": victim.Deadline,
	})
	if code != http.StatusAccepted {
		t.Fatalf("add submit: status %d", code)
	}
	done = poll(t, ts, v.ID, 30*time.Second)
	if done.State != StateDone {
		t.Fatalf("add job finished %v (%s)", done.State, done.Error)
	}
	addArt := done.Artifact
	flows, err = wsan.LoadWorkload(bytes.NewReader(fetchPart(t, ts, addArt, "workload.json")))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range flows {
		found = found || f.ID == 99
	}
	if !found || len(flows) != len(baseFlows) {
		t.Fatalf("workload after add: %d flows, flow 99 present: %v", len(flows), found)
	}

	// Reroute the new flow (no avoid set: the shortest route is re-derived).
	v, code = submit(t, ts, "plant", KindReschedule, map[string]any{
		"artifact": addArt, "op": "reroute", "flow": 99,
	})
	if code != http.StatusAccepted {
		t.Fatalf("reroute submit: status %d", code)
	}
	done = poll(t, ts, v.ID, 30*time.Second)
	if done.State != StateDone {
		t.Fatalf("reroute job finished %v (%s)", done.State, done.Error)
	}

	// The rescheduled bundle must remain a valid input for simulation.
	v, code = submit(t, ts, "plant", KindSimulate, map[string]any{
		"artifact": done.Artifact, "hyperperiods": 1,
	})
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("simulate submit: status %d", code)
	}
	if done = poll(t, ts, v.ID, 30*time.Second); done.State != StateDone {
		t.Fatalf("simulate over rescheduled bundle finished %v (%s)", done.State, done.Error)
	}
}

// TestRescheduleValidation exercises the 400 surface of the reschedule kind.
func TestRescheduleValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	createTestNetwork(t, ts, "plant")
	art := mustSchedule(t, ts, "plant")

	bad := []map[string]any{
		{"artifact": art, "op": "transmogrify", "flow": 0},
		{"artifact": art, "op": "remove", "flow": -1},
		{"artifact": art, "op": "add", "flow": 99, "src": 1, "dst": 1, "period": 100},
		{"artifact": art, "op": "add", "flow": 99, "src": 1, "dst": 2},
		{"artifact": art, "op": "add", "flow": 99, "src": 1, "dst": 2, "period": 100, "avoid": []int{3}},
		{"artifact": art, "op": "remove", "flow": 0, "period": 100},
		{"artifact": "nope", "op": "remove", "flow": 0},
	}
	for i, params := range bad {
		if _, code := submit(t, ts, "plant", KindReschedule, params); code != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400 (%v)", i, code, params)
		}
	}
}

// TestRetryIdempotentAfterStoreWrite reproduces the duplicate-write bug: a
// job attempt that stores its artifact and then fails with a Transient error
// (a crash between the store write and the ack) is retried — the retry must
// find the stored artifact and return it, never recomputing the pipeline or
// re-writing the store.
func TestRetryIdempotentAfterStoreWrite(t *testing.T) {
	srv, err := New(Config{Workers: 1, QueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := contextWithTimeout(2 * time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	var buf bytes.Buffer
	if err := wsan.SaveTestbed(testTestbed(t), &buf); err != nil {
		t.Fatal(err)
	}
	nw, err := srv.nets.create(CreateNetworkRequest{
		Name: "plant", Testbed: json.RawMessage(buf.Bytes()), Channels: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	canon, err := srv.canonicalParams(nw, KindSchedule,
		json.RawMessage(`{"flows":3,"maxPeriodExp":1,"seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	key := ArtifactKey(nw.Hash, KindSchedule, canon)

	attempts := 0
	pool := NewPool(PoolConfig{
		Workers: 1, QueueCap: 2, MaxRetries: 2,
		RetryBackoff: time.Millisecond, Metrics: srv.mets,
	}, func(ctx context.Context, j *Job) (string, error) {
		attempts++
		art, runErr := srv.runJob(ctx, j)
		if attempts == 1 && runErr == nil {
			return "", Transient(errors.New("worker crashed after the store write"))
		}
		return art, runErr
	})
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{ID: "t1", Network: "plant", Kind: KindSchedule, Key: key,
		Params: canon, ctx: ctx, cancel: cancel, state: StateQueued, created: time.Now()}
	if err := pool.Submit(j); err != nil {
		t.Fatal(err)
	}
	closeCtx, closeCancel := contextWithTimeout(30 * time.Second)
	defer closeCancel()
	if err := pool.Close(closeCtx); err != nil {
		t.Fatal(err)
	}

	v := j.View()
	if v.State != StateDone || v.Artifact != key || v.Retries != 1 {
		t.Fatalf("job after retry: %+v", v)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	if n := srv.store.Len(); n != 1 {
		t.Fatalf("store holds %d artifacts, want 1", n)
	}
	if got := srv.mets.CounterValue("server.cache.stored"); got != 1 {
		t.Errorf("server.cache.stored = %d, want 1", got)
	}
	// The regression signal: without the runJob idempotency probe the retry
	// recomputes and re-Puts, which counts a duplicate write.
	if got := srv.mets.CounterValue("server.cache.dup_writes"); got != 0 {
		t.Errorf("server.cache.dup_writes = %d, want 0", got)
	}
}

// TestQueueFullRetryAfter checks that 429 responses carry a Retry-After
// derived from the actual backlog, and that the estimate clamps sanely.
func TestQueueFullRetryAfter(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueCap: 2})
	createTestNetwork(t, ts, "plant")
	art := mustSchedule(t, ts, "plant")

	// An idle pool would tell a client to retry in one second.
	if got := srv.pool.RetryAfterSeconds(); got != 1 {
		t.Fatalf("idle RetryAfterSeconds = %d, want 1", got)
	}

	long := func(seed int) map[string]any {
		return map[string]any{"artifact": art, "hyperperiods": 2_000_000, "seed": seed}
	}
	// Occupy the single worker, then fill the two queue slots.
	v1, code := submit(t, ts, "plant", KindSimulate, long(11))
	if code != http.StatusAccepted {
		t.Fatalf("job 1: status %d", code)
	}
	waitState(t, ts, v1.ID, StateRunning, 10*time.Second)
	var queued []JobView
	for seed := 12; seed <= 13; seed++ {
		v, code := submit(t, ts, "plant", KindSimulate, long(seed))
		if code != http.StatusAccepted {
			t.Fatalf("job seed %d: status %d", seed, code)
		}
		queued = append(queued, v)
	}

	// The overflow submission is rejected with the backlog-derived header:
	// 1 running + 2 queued jobs on 1 worker → 3 seconds. (The running job
	// counts: before the fix the estimate ignored busy workers and said 2.)
	body, _ := json.Marshal(map[string]any{"kind": KindSimulate, "params": long(14)})
	resp, err := http.Post(ts.URL+"/networks/plant/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow: status %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", resp.Header.Get("Retry-After"), err)
	}
	if ra != 3 {
		t.Errorf("Retry-After = %d, want 3", ra)
	}

	for _, v := range queued {
		doJSON(t, http.MethodDelete, ts.URL+"/jobs/"+v.ID, nil, nil)
	}
	doJSON(t, http.MethodDelete, ts.URL+"/jobs/"+v1.ID, nil, nil)
	waitState(t, ts, v1.ID, StateCancelled, 10*time.Second)
}
