package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"wsan/internal/obs"
	"wsan/internal/server/storage"
)

// Config parameterizes the daemon.
type Config struct {
	// Workers is the worker-pool size (default: GOMAXPROCS).
	Workers int
	// QueueCap bounds the FIFO job queue; a full queue rejects submissions
	// with 429 (default 64).
	QueueCap int
	// JobTimeout is the per-job watchdog (see PoolConfig.JobTimeout).
	// Default 0: no watchdog.
	JobTimeout time.Duration
	// MaxRetries and RetryBackoff configure the retry policy for jobs
	// failing with a Transient error (see PoolConfig). Defaults: 2 retries,
	// 250ms base backoff.
	MaxRetries   int
	RetryBackoff time.Duration
	// Metrics receives every server and pipeline signal and backs the
	// /metrics endpoint. Nil creates a fresh registry.
	Metrics *obs.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the server
	// mux (the wsansim serve command turns this on).
	EnablePprof bool
	// EventBuffer is the per-subscriber event queue capacity; a subscriber
	// whose queue is full has events dropped (counted in
	// server.events.dropped) rather than ever blocking a worker
	// (default 64).
	EventBuffer int
	// EventReplay bounds the replay ring backing Last-Event-ID resume
	// (default 1024 events). Retention starts with the first subscriber.
	EventReplay int
	// MetricsInterval is the period of the metrics.delta firehose events
	// (default 10s; negative disables them). The same ticker drives the
	// periodic TTL sweep of the artifact store.
	MetricsInterval time.Duration
	// StoreDir, when set, makes the artifact store durable: artifacts are
	// written to this directory (content-addressed, atomically published)
	// behind a memory front tier, and a restarted daemon warm-scans the
	// directory so previously computed artifacts are served from disk
	// without recomputation. Empty keeps the process-lifetime memory store.
	StoreDir string
	// StoreMaxBytes bounds the artifact store's total part payload; when
	// the budget is exceeded, least-recently-used artifacts are evicted
	// (from both tiers of a durable store). 0 = unbounded.
	StoreMaxBytes int64
	// StoreTTL, when positive, expires artifacts that old: they are never
	// served past the TTL and are reclaimed lazily on access plus
	// periodically (see MetricsInterval). 0 = no expiry.
	StoreTTL time.Duration
	// StoreMemBytes bounds the memory front tier of a durable store
	// (default 256 MiB). Ignored without StoreDir.
	StoreMemBytes int64
}

// Server is the network-manager daemon: hosted networks, the artifact
// store, the job queue, the event bus, and the HTTP surface over them.
type Server struct {
	nets  *registry
	store *storage.Evicting
	pool  *Pool
	mets  *obs.Registry
	bus   *Bus
	mux   *http.ServeMux

	baseCtx    context.Context
	baseCancel context.CancelFunc

	metricsStop chan struct{}
	metricsDone chan struct{}

	mu       sync.Mutex
	jobs     map[string]*Job
	jobOrder []string
	jobSeq   int
	draining bool
}

// New builds a ready-to-serve daemon. It errors only when a configured
// store directory cannot be opened. Call Shutdown to drain it.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 2
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 250 * time.Millisecond
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.MetricsInterval == 0 {
		cfg.MetricsInterval = 10 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		nets:        newRegistry(),
		mets:        cfg.Metrics,
		bus:         NewBus(cfg.EventBuffer, cfg.EventReplay, cfg.Metrics),
		baseCtx:     ctx,
		baseCancel:  cancel,
		metricsStop: make(chan struct{}),
		metricsDone: make(chan struct{}),
		jobs:        make(map[string]*Job),
	}
	store, err := buildStore(cfg, s.cacheEviction)
	if err != nil {
		cancel()
		return nil, err
	}
	s.store = store
	s.pool = NewPool(PoolConfig{
		Workers:      cfg.Workers,
		QueueCap:     cfg.QueueCap,
		JobTimeout:   cfg.JobTimeout,
		MaxRetries:   cfg.MaxRetries,
		RetryBackoff: cfg.RetryBackoff,
		Metrics:      cfg.Metrics,
	}, s.runJob)
	s.mux = s.buildMux(cfg.EnablePprof)
	// Pre-declare the headline counters so a fresh /metrics snapshot
	// carries the full schema as explicit zeros.
	for _, name := range []string{
		"server.jobs.submitted", "server.jobs.completed", "server.jobs.failed",
		"server.jobs.cancelled", "server.jobs.rejected", "server.jobs.retries",
		"server.jobs.panics", "server.jobs.watchdog_timeouts",
		"server.cache.hits", "server.cache.misses", "server.cache.stored",
		"server.cache.dup_writes", "server.cache.evictions",
		"server.cache.quarantined",
		"server.events.published", "server.events.dropped",
	} {
		s.mets.Count(name, 0)
	}
	s.mets.Gauge("server.queue.depth", 0)
	s.mets.Gauge("server.events.subscribers", 0)
	if cfg.MetricsInterval > 0 {
		go s.metricsLoop(cfg.MetricsInterval)
	} else {
		close(s.metricsDone)
	}
	return s, nil
}

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the registry backing /metrics.
func (s *Server) Metrics() *obs.Registry { return s.mets }

// Events returns the daemon's event bus (tests and embedders subscribe
// directly; HTTP clients use the /v1/events SSE endpoints).
func (s *Server) Events() *Bus { return s.bus }

// Shutdown drains the daemon: new jobs are rejected immediately, running
// and queued jobs get until ctx expires to finish, then their contexts are
// cancelled and the workers are awaited unconditionally. The event bus
// closes last, so subscribers observe the final transitions of drained
// jobs before their streams end.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	err := s.pool.Close(ctx)
	if err != nil {
		// Out of patience: abort every in-flight job and wait for the
		// workers to observe the cancellation.
		s.baseCancel()
		s.pool.Wait()
	} else {
		s.baseCancel()
	}
	select {
	case <-s.metricsDone:
	default:
		close(s.metricsStop)
		<-s.metricsDone
	}
	s.bus.Close()
	// The workers are drained, so nothing writes the store anymore; a disk
	// backend releases its in-memory index here while the artifacts stay
	// durable for the next daemon.
	if cerr := s.store.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// SubmitJob canonicalizes the request, probes the artifact cache, and
// either completes the job instantly (cache hit) or enqueues it. The
// returned error is ErrQueueFull, ErrDraining, or a validation error.
func (s *Server) SubmitJob(network, kind string, params json.RawMessage) (*Job, error) {
	nw, ok := s.nets.get(network)
	if !ok {
		return nil, fmt.Errorf("network %q not found", network)
	}
	canon, err := s.canonicalParams(nw, kind, params)
	if err != nil {
		return nil, fmt.Errorf("invalid %s parameters: %w", kind, err)
	}
	key := ArtifactKey(nw.Hash, kind, canon)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.jobSeq++
	id := fmt.Sprintf("j%d", s.jobSeq)
	s.mu.Unlock()

	ctx, cancel := context.WithCancel(s.baseCtx)
	j := &Job{
		ID:           id,
		Network:      network,
		Kind:         kind,
		Key:          key,
		Params:       canon,
		ctx:          ctx,
		cancel:       cancel,
		state:        StateQueued,
		created:      time.Now(),
		onTransition: s.jobTransition,
	}
	if art, ok := s.store.Lookup(key); ok {
		// Cache hit: the artifact for this exact request already exists;
		// the job completes without touching the queue.
		j.mu.Lock()
		j.state = StateDone
		j.cached = true
		j.artifactID = art.ID
		j.started = j.created
		j.finished = time.Now()
		j.mu.Unlock()
		cancel()
		s.rememberJob(j)
		j.notifyTransition()
		return j, nil
	}
	if err := s.pool.Submit(j); err != nil {
		cancel()
		return nil, err
	}
	s.rememberJob(j)
	j.notifyTransition()
	return j, nil
}

// rememberJob indexes a job for the /jobs endpoints.
func (s *Server) rememberJob(j *Job) {
	s.mu.Lock()
	s.jobs[j.ID] = j
	s.jobOrder = append(s.jobOrder, j.ID)
	s.mu.Unlock()
}

// Job looks a job up by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// jobSeqNum extracts the numeric part of a job ID ("j42" → 42, ok). Job
// IDs are assigned from a strictly increasing sequence, so the number
// orders jobs by submission — the property cursor pagination binary
// searches on.
func jobSeqNum(id string) (int, bool) {
	if len(id) < 2 || id[0] != 'j' {
		return 0, false
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// JobViews snapshots jobs in submission order (the jobs list's stable
// ordering). after, when non-empty, skips every job at or before that ID
// in submission order; limit > 0 caps the page size. The second return is
// the cursor of the next page ("" when this page exhausts the list).
func (s *Server) JobViews(after string, limit int) ([]JobView, string) {
	s.mu.Lock()
	order := s.jobOrder
	start := 0
	if after != "" {
		if seq, ok := jobSeqNum(after); ok {
			// jobOrder is append-only with strictly increasing sequence
			// numbers, so the resume point binary-searches in O(log n).
			start = sort.Search(len(order), func(i int) bool {
				n, _ := jobSeqNum(order[i])
				return n > seq
			})
		}
	}
	end := len(order)
	if limit > 0 && start+limit < end {
		end = start + limit
	}
	jobs := make([]*Job, 0, end-start)
	for _, id := range order[start:end] {
		jobs = append(jobs, s.jobs[id])
	}
	more := end < len(order)
	s.mu.Unlock()
	views := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.View())
	}
	var next string
	if more && len(views) > 0 {
		next = views[len(views)-1].ID
	}
	return views, next
}

// ArtifactView is the artifact description the list endpoint serves (the
// parts are listed by name; fetch them via /v1/artifacts/{id}/{part}).
type ArtifactView struct {
	ID      string    `json:"id"`
	Kind    string    `json:"kind"`
	Created time.Time `json:"created"`
	Parts   []string  `json:"parts"`
}

// ArtifactViews lists stored artifacts sorted by ID (the artifacts list's
// stable ordering — content addresses, so the order is arbitrary but
// stable). after resumes strictly past that ID — the cursor itself need
// not still exist, so a page boundary evicted between requests resumes
// correctly; limit > 0 caps the page. The second return is the next page's
// cursor ("" when exhausted).
func (s *Server) ArtifactViews(after string, limit int) ([]ArtifactView, string) {
	infos, next := s.store.List(after, limit)
	out := make([]ArtifactView, 0, len(infos))
	for _, info := range infos {
		out = append(out, ArtifactView{ID: info.ID, Kind: info.Kind, Created: info.Created, Parts: info.Parts})
	}
	return out, next
}

// cacheEviction is the store's OnEvict hook: every evicted artifact is
// counted by the store itself and announced on the event bus so `wsansim
// watch` surfaces cache pressure live.
func (s *Server) cacheEviction(ev storage.Eviction) {
	s.bus.Publish(EventCacheEvict, "", "", ev)
}

// buildMux assembles the HTTP surface. Every route is mounted twice: under
// /v1 (the versioned API clients should target) and at its original
// unversioned path, kept as a deprecated alias that answers with a
// "Deprecation: true" header.
func (s *Server) buildMux(enablePprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	routes := []struct {
		method, path, name string
		h                  http.HandlerFunc
	}{
		{"GET", "/healthz", "healthz", s.handleHealthz},
		{"GET", "/metrics", "metrics", s.handleMetrics},
		{"POST", "/networks", "networks_create", s.handleCreateNetwork},
		{"GET", "/networks", "networks_list", s.handleListNetworks},
		{"GET", "/networks/{name}", "networks_get", s.handleGetNetwork},
		{"DELETE", "/networks/{name}", "networks_delete", s.handleDeleteNetwork},
		{"POST", "/networks/{name}/jobs", "jobs_submit", s.handleSubmitJob},
		{"GET", "/jobs", "jobs_list", s.handleListJobs},
		{"GET", "/jobs/{id}", "jobs_get", s.handleGetJob},
		{"DELETE", "/jobs/{id}", "jobs_cancel", s.handleCancelJob},
		{"GET", "/jobs/{id}/events", "jobs_events", s.handleJobEvents},
		{"GET", "/events", "events", s.handleEvents},
		{"GET", "/artifacts", "artifacts_list", s.handleListArtifacts},
		{"GET", "/artifacts/{id}", "artifacts_get", s.handleGetArtifact},
		{"GET", "/artifacts/{id}/{part}", "artifacts_part", s.handleGetArtifactPart},
	}
	for _, rt := range routes {
		s.handle(mux, rt.method+" /v1"+rt.path, rt.name, rt.h, false)
		s.handle(mux, rt.method+" "+rt.path, rt.name, rt.h, true)
	}
	if enablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	// Catch-all: requests matching no route get the JSON error envelope
	// instead of the mux's plain-text defaults, so every non-2xx response
	// on the API surface has one shape.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, http.StatusNotFound, codeNotFound, "no route for %s %s", r.Method, r.URL.Path)
	})
	return mux
}

// handle registers a route with per-endpoint request counting and latency
// histograms ("server.http.<name>.requests" / "server.http.<name>_seconds").
// deprecated marks the unversioned alias of a /v1 route: it serves
// identically but advertises the deprecation per draft-ietf-httpapi-deprecation.
func (s *Server) handle(mux *http.ServeMux, pattern, name string, h http.HandlerFunc, deprecated bool) {
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		s.mets.Count("server.http."+name+".requests", 1)
		defer obs.Timed(s.mets, "server.http."+name+"_seconds")()
		if deprecated {
			w.Header().Set("Deprecation", "true")
			w.Header().Set("Link", `</v1`+r.URL.Path+`>; rel="successor-version"`)
		}
		h(w, r)
	})
}

// writeJSON serves one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Error codes of the v1 error envelope. Every non-2xx API response is
//
//	{"error": {"code": "<one of these>", "message": "<human-readable>"}}
//
// so typed clients can branch on the code without parsing messages.
const (
	codeInvalidRequest = "invalid_request"
	codeNotFound       = "not_found"
	codeConflict       = "conflict"
	codeQueueFull      = "queue_full"
	codeDraining       = "draining"
	codeInternal       = "internal"
)

// errorBody is the wire form of the v1 error envelope.
type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// writeErr serves one JSON error envelope.
func writeErr(w http.ResponseWriter, status int, code, format string, args ...any) {
	var body errorBody
	body.Error.Code = code
	body.Error.Message = fmt.Sprintf(format, args...)
	writeJSON(w, status, body)
}
