package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"sync"
	"time"

	"wsan/internal/obs"
)

// Config parameterizes the daemon.
type Config struct {
	// Workers is the worker-pool size (default: GOMAXPROCS).
	Workers int
	// QueueCap bounds the FIFO job queue; a full queue rejects submissions
	// with 429 (default 64).
	QueueCap int
	// JobTimeout is the per-job watchdog (see PoolConfig.JobTimeout).
	// Default 0: no watchdog.
	JobTimeout time.Duration
	// MaxRetries and RetryBackoff configure the retry policy for jobs
	// failing with a Transient error (see PoolConfig). Defaults: 2 retries,
	// 250ms base backoff.
	MaxRetries   int
	RetryBackoff time.Duration
	// Metrics receives every server and pipeline signal and backs the
	// /metrics endpoint. Nil creates a fresh registry.
	Metrics *obs.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the server
	// mux (the wsansim serve command turns this on).
	EnablePprof bool
}

// Server is the network-manager daemon: hosted networks, the artifact
// store, the job queue, and the HTTP surface over them.
type Server struct {
	nets  *registry
	store *Store
	pool  *Pool
	mets  *obs.Registry
	mux   *http.ServeMux

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	jobOrder []string
	jobSeq   int
	draining bool
}

// New builds a ready-to-serve daemon. Call Shutdown to drain it.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 2
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 250 * time.Millisecond
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		nets:       newRegistry(),
		store:      NewStore(cfg.Metrics),
		mets:       cfg.Metrics,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
	}
	s.pool = NewPool(PoolConfig{
		Workers:      cfg.Workers,
		QueueCap:     cfg.QueueCap,
		JobTimeout:   cfg.JobTimeout,
		MaxRetries:   cfg.MaxRetries,
		RetryBackoff: cfg.RetryBackoff,
		Metrics:      cfg.Metrics,
	}, s.runJob)
	s.mux = s.buildMux(cfg.EnablePprof)
	// Pre-declare the headline counters so a fresh /metrics snapshot
	// carries the full schema as explicit zeros.
	for _, name := range []string{
		"server.jobs.submitted", "server.jobs.completed", "server.jobs.failed",
		"server.jobs.cancelled", "server.jobs.rejected", "server.jobs.retries",
		"server.jobs.panics", "server.jobs.watchdog_timeouts",
		"server.cache.hits", "server.cache.misses", "server.cache.stored",
		"server.cache.dup_writes",
	} {
		s.mets.Count(name, 0)
	}
	s.mets.Gauge("server.queue.depth", 0)
	return s
}

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the registry backing /metrics.
func (s *Server) Metrics() *obs.Registry { return s.mets }

// Shutdown drains the daemon: new jobs are rejected immediately, running
// and queued jobs get until ctx expires to finish, then their contexts are
// cancelled and the workers are awaited unconditionally.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	err := s.pool.Close(ctx)
	if err != nil {
		// Out of patience: abort every in-flight job and wait for the
		// workers to observe the cancellation.
		s.baseCancel()
		s.pool.Wait()
		return err
	}
	s.baseCancel()
	return nil
}

// SubmitJob canonicalizes the request, probes the artifact cache, and
// either completes the job instantly (cache hit) or enqueues it. The
// returned error is ErrQueueFull, ErrDraining, or a validation error.
func (s *Server) SubmitJob(network, kind string, params json.RawMessage) (*Job, error) {
	nw, ok := s.nets.get(network)
	if !ok {
		return nil, fmt.Errorf("network %q not found", network)
	}
	canon, err := s.canonicalParams(nw, kind, params)
	if err != nil {
		return nil, fmt.Errorf("invalid %s parameters: %w", kind, err)
	}
	key := ArtifactKey(nw.Hash, kind, canon)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.jobSeq++
	id := fmt.Sprintf("j%d", s.jobSeq)
	s.mu.Unlock()

	ctx, cancel := context.WithCancel(s.baseCtx)
	j := &Job{
		ID:      id,
		Network: network,
		Kind:    kind,
		Key:     key,
		Params:  canon,
		ctx:     ctx,
		cancel:  cancel,
		state:   StateQueued,
		created: time.Now(),
	}
	if art, ok := s.store.Lookup(key); ok {
		// Cache hit: the artifact for this exact request already exists;
		// the job completes without touching the queue.
		j.mu.Lock()
		j.state = StateDone
		j.cached = true
		j.artifactID = art.ID
		j.started = j.created
		j.finished = time.Now()
		j.mu.Unlock()
		cancel()
		s.rememberJob(j)
		return j, nil
	}
	if err := s.pool.Submit(j); err != nil {
		cancel()
		return nil, err
	}
	s.rememberJob(j)
	return j, nil
}

// rememberJob indexes a job for the /jobs endpoints.
func (s *Server) rememberJob(j *Job) {
	s.mu.Lock()
	s.jobs[j.ID] = j
	s.jobOrder = append(s.jobOrder, j.ID)
	s.mu.Unlock()
}

// Job looks a job up by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// JobViews snapshots every job in submission order.
func (s *Server) JobViews() []JobView {
	s.mu.Lock()
	order := append([]string(nil), s.jobOrder...)
	jobs := make([]*Job, 0, len(order))
	for _, id := range order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	views := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.View())
	}
	return views
}

// ArtifactViews lists the stored artifacts (ID, kind, parts), sorted by ID.
func (s *Server) ArtifactViews() []map[string]any {
	s.store.mu.RLock()
	arts := make([]*Artifact, 0, len(s.store.arts))
	for _, a := range s.store.arts {
		arts = append(arts, a)
	}
	s.store.mu.RUnlock()
	sort.Slice(arts, func(i, j int) bool { return arts[i].ID < arts[j].ID })
	out := make([]map[string]any, 0, len(arts))
	for _, a := range arts {
		out = append(out, map[string]any{
			"id": a.ID, "kind": a.Kind, "created": a.Created, "parts": a.PartNames(),
		})
	}
	return out
}

// buildMux assembles the HTTP surface.
func (s *Server) buildMux(enablePprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	s.handle(mux, "GET /healthz", "healthz", s.handleHealthz)
	s.handle(mux, "GET /metrics", "metrics", s.handleMetrics)
	s.handle(mux, "POST /networks", "networks_create", s.handleCreateNetwork)
	s.handle(mux, "GET /networks", "networks_list", s.handleListNetworks)
	s.handle(mux, "GET /networks/{name}", "networks_get", s.handleGetNetwork)
	s.handle(mux, "DELETE /networks/{name}", "networks_delete", s.handleDeleteNetwork)
	s.handle(mux, "POST /networks/{name}/jobs", "jobs_submit", s.handleSubmitJob)
	s.handle(mux, "GET /jobs", "jobs_list", s.handleListJobs)
	s.handle(mux, "GET /jobs/{id}", "jobs_get", s.handleGetJob)
	s.handle(mux, "DELETE /jobs/{id}", "jobs_cancel", s.handleCancelJob)
	s.handle(mux, "GET /artifacts", "artifacts_list", s.handleListArtifacts)
	s.handle(mux, "GET /artifacts/{id}", "artifacts_get", s.handleGetArtifact)
	s.handle(mux, "GET /artifacts/{id}/{part}", "artifacts_part", s.handleGetArtifactPart)
	if enablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// handle registers a route with per-endpoint request counting and latency
// histograms ("server.http.<name>.requests" / "server.http.<name>_seconds").
func (s *Server) handle(mux *http.ServeMux, pattern, name string, h http.HandlerFunc) {
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		s.mets.Count("server.http."+name+".requests", 1)
		defer obs.Timed(s.mets, "server.http."+name+"_seconds")()
		h(w, r)
	})
}

// writeJSON serves one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeErr serves one JSON error envelope.
func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
