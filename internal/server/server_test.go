package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wsan"
)

// contextWithTimeout is a shorthand for context.WithTimeout off Background.
func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

// testTestbed generates a small three-floor deployment once per call —
// small enough that schedule jobs finish in milliseconds and simulation
// jobs are dominated by the requested hyperperiod count.
func testTestbed(t *testing.T) *wsan.Testbed {
	t.Helper()
	cfg := wsan.DefaultTestbedConfig()
	cfg.NumNodes = 18
	tb, err := wsan.GenerateTestbed(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// newTestServer starts a daemon on an httptest listener.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := contextWithTimeout(2 * time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, ts
}

// doJSON issues one request with a JSON body and decodes the JSON response.
// Every non-2xx response is asserted to be the v1 error envelope (except
// /healthz, whose 503 is a liveness report, not an error); pass out as
// *errorBody to inspect the code. So every failure path any test exercises
// doubles as an envelope-shape assertion.
func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode >= 400 && !strings.HasSuffix(url, "/healthz") {
		var env errorBody
		if err := json.Unmarshal(data, &env); err != nil || env.Error.Code == "" || env.Error.Message == "" {
			t.Fatalf("%s %s: status %d body %q is not the error envelope", method, url, resp.StatusCode, data)
		}
		if e, ok := out.(*errorBody); ok {
			*e = env
		}
		return resp.StatusCode
	}
	if out != nil && len(data) > 0 {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

// createTestNetwork uploads the small testbed as network "plant".
func createTestNetwork(t *testing.T, ts *httptest.Server, name string) {
	t.Helper()
	var buf bytes.Buffer
	if err := wsan.SaveTestbed(testTestbed(t), &buf); err != nil {
		t.Fatal(err)
	}
	var view NetworkView
	code := doJSON(t, http.MethodPost, ts.URL+"/networks", map[string]any{
		"name":     name,
		"testbed":  json.RawMessage(buf.Bytes()),
		"channels": 4,
	}, &view)
	if code != http.StatusCreated {
		t.Fatalf("create network: status %d", code)
	}
	if view.Nodes != 18 || len(view.Channels) != 4 {
		t.Fatalf("unexpected network view: %+v", view)
	}
}

// submit posts one job and returns its view and HTTP status.
func submit(t *testing.T, ts *httptest.Server, network, kind string, params map[string]any) (JobView, int) {
	t.Helper()
	var v JobView
	code := doJSON(t, http.MethodPost, ts.URL+"/networks/"+network+"/jobs",
		map[string]any{"kind": kind, "params": params}, &v)
	return v, code
}

// poll waits for a job to leave the queued/running states.
func poll(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var v JobView
		if code := doJSON(t, http.MethodGet, ts.URL+"/jobs/"+id, nil, &v); code != http.StatusOK {
			t.Fatalf("poll %s: status %d", id, code)
		}
		if v.State != StateQueued && v.State != StateRunning {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %v after %v", id, v.State, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitState waits for a job to reach one specific state.
func waitState(t *testing.T, ts *httptest.Server, id string, want JobState, timeout time.Duration) JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var v JobView
		doJSON(t, http.MethodGet, ts.URL+"/jobs/"+id, nil, &v)
		if v.State == want {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s is %v, want %v after %v", id, v.State, want, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEndToEnd drives the acceptance-criteria chain: create a network,
// schedule with RC, poll to done, fetch the artifact, resubmit the
// identical request and observe a cache hit, then simulate the schedule.
func TestEndToEnd(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2, QueueCap: 8})
	createTestNetwork(t, ts, "plant")

	params := map[string]any{"flows": 5, "alg": "rc", "seed": 3, "maxPeriodExp": 1}
	v, code := submit(t, ts, "plant", KindSchedule, params)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d (%+v)", code, v)
	}
	if v.Cached {
		t.Fatal("first submission should not be a cache hit")
	}
	done := poll(t, ts, v.ID, 30*time.Second)
	if done.State != StateDone {
		t.Fatalf("job finished %v (%s)", done.State, done.Error)
	}
	if done.Artifact == "" {
		t.Fatal("done job has no artifact")
	}

	// The artifact bundle must round-trip through the library decoders.
	var bundle struct {
		ID    string                     `json:"id"`
		Parts map[string]json.RawMessage `json:"parts"`
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/artifacts/"+done.Artifact, nil, &bundle); code != http.StatusOK {
		t.Fatalf("get artifact: status %d", code)
	}
	for _, part := range []string{"survey.json", "workload.json", "schedule.json", "summary.json"} {
		if len(bundle.Parts[part]) == 0 {
			t.Fatalf("artifact missing part %s", part)
		}
	}
	flows, err := wsan.LoadWorkload(bytes.NewReader(bundle.Parts["workload.json"]))
	if err != nil {
		t.Fatalf("workload part does not decode: %v", err)
	}
	if len(flows) != 5 {
		t.Fatalf("artifact workload has %d flows, want 5", len(flows))
	}
	sched, err := wsan.LoadSchedule(bytes.NewReader(bundle.Parts["schedule.json"]))
	if err != nil {
		t.Fatalf("schedule part does not decode: %v", err)
	}
	if sched.Schedule.Len() == 0 {
		t.Fatal("artifact schedule is empty")
	}
	// The raw part endpoint serves the stored bytes untouched — the same
	// bytes `wsansim gen-schedule` would have written to schedule.json.
	resp, err := http.Get(ts.URL + "/artifacts/" + done.Artifact + "/schedule.json")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	stored, ok := srv.store.Get(done.Artifact)
	if !ok {
		t.Fatal("artifact missing from the store")
	}
	if !bytes.Equal(raw, stored.Part("schedule.json")) {
		t.Fatal("raw part endpoint rewrote the stored bytes")
	}
	// The bundle embeds the same documents (modulo indentation).
	var compactBundle, compactRaw bytes.Buffer
	if err := json.Compact(&compactBundle, bundle.Parts["schedule.json"]); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&compactRaw, raw); err != nil {
		t.Fatal(err)
	}
	if compactBundle.String() != compactRaw.String() {
		t.Fatal("bundle part differs from the raw part")
	}

	// Identical resubmission: cache hit, done instantly, same artifact.
	hits := srv.Metrics().CounterValue("server.cache.hits")
	v2, code := submit(t, ts, "plant", KindSchedule, params)
	if code != http.StatusOK {
		t.Fatalf("resubmit: status %d, want 200 (cache hit)", code)
	}
	if !v2.Cached || v2.State != StateDone || v2.Artifact != done.Artifact {
		t.Fatalf("resubmit not a cache hit: %+v", v2)
	}
	if got := srv.Metrics().CounterValue("server.cache.hits"); got != hits+1 {
		t.Fatalf("server.cache.hits = %d, want %d", got, hits+1)
	}

	// Chain a simulation over the artifact.
	sv, code := submit(t, ts, "plant", KindSimulate, map[string]any{
		"artifact": done.Artifact, "hyperperiods": 5, "seed": 2,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit simulate: status %d (%+v)", code, sv)
	}
	sdone := poll(t, ts, sv.ID, 30*time.Second)
	if sdone.State != StateDone {
		t.Fatalf("simulate finished %v (%s)", sdone.State, sdone.Error)
	}
	resp, err = http.Get(ts.URL + "/artifacts/" + sdone.Artifact + "/report.json")
	if err != nil {
		t.Fatal(err)
	}
	var rep simReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("report does not decode: %v", err)
	}
	resp.Body.Close()
	if rep.Flows != 5 || rep.Hyperperiods != 5 || len(rep.PerFlow) != 5 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	if rep.PDRSummary.Max <= 0 {
		t.Fatalf("report PDR summary is empty: %+v", rep.PDRSummary)
	}

	// /metrics serves the registry snapshot with the server schema.
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &snap); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if snap.Counters["server.jobs.completed"] < 2 {
		t.Fatalf("metrics report %d completed jobs, want ≥ 2", snap.Counters["server.jobs.completed"])
	}
}

// TestCancelRunningJob verifies that DELETE on a running job interrupts the
// simulation promptly instead of letting it run to completion.
func TestCancelRunningJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	createTestNetwork(t, ts, "plant")
	art := mustSchedule(t, ts, "plant")

	// A simulation this long would take minutes; cancellation must cut it
	// to well under the polling deadline.
	v, code := submit(t, ts, "plant", KindSimulate, map[string]any{
		"artifact": art, "hyperperiods": 2_000_000, "seed": 5,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	waitState(t, ts, v.ID, StateRunning, 10*time.Second)

	start := time.Now()
	var cv JobView
	if code := doJSON(t, http.MethodDelete, ts.URL+"/jobs/"+v.ID, nil, &cv); code != http.StatusOK {
		t.Fatalf("cancel: status %d", code)
	}
	fin := waitState(t, ts, v.ID, StateCancelled, 10*time.Second)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if fin.Error == "" {
		t.Fatal("cancelled job should carry the cancellation error")
	}
	// A finished job cannot be cancelled again.
	if code := doJSON(t, http.MethodDelete, ts.URL+"/jobs/"+v.ID, nil, nil); code != http.StatusConflict {
		t.Fatalf("re-cancel: status %d, want 409", code)
	}
}

// TestBackpressure fills the queue and expects 429 on the overflow job.
func TestBackpressure(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 1})
	createTestNetwork(t, ts, "plant")
	art := mustSchedule(t, ts, "plant")

	long := func(seed int) map[string]any {
		return map[string]any{"artifact": art, "hyperperiods": 2_000_000, "seed": seed}
	}
	// First long job occupies the single worker...
	v1, code := submit(t, ts, "plant", KindSimulate, long(11))
	if code != http.StatusAccepted {
		t.Fatalf("job 1: status %d", code)
	}
	waitState(t, ts, v1.ID, StateRunning, 10*time.Second)
	// ...the second fills the queue...
	v2, code := submit(t, ts, "plant", KindSimulate, long(12))
	if code != http.StatusAccepted {
		t.Fatalf("job 2: status %d", code)
	}
	// ...and the third must be rejected with 429.
	_, code = submit(t, ts, "plant", KindSimulate, long(13))
	if code != http.StatusTooManyRequests {
		t.Fatalf("job 3: status %d, want 429", code)
	}
	// Cancel the queued job: it must finish without ever running.
	if code := doJSON(t, http.MethodDelete, ts.URL+"/jobs/"+v2.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("cancel queued: status %d", code)
	}
	if v := waitState(t, ts, v2.ID, StateCancelled, 5*time.Second); v.Started != nil {
		t.Fatalf("queued job should never start, got %+v", v)
	}
	doJSON(t, http.MethodDelete, ts.URL+"/jobs/"+v1.ID, nil, nil)
	waitState(t, ts, v1.ID, StateCancelled, 10*time.Second)
}

// mustSchedule runs one small schedule job to completion and returns its
// artifact ID.
func mustSchedule(t *testing.T, ts *httptest.Server, network string) string {
	t.Helper()
	v, code := submit(t, ts, network, KindSchedule, map[string]any{
		"flows": 5, "alg": "rc", "seed": 3, "maxPeriodExp": 1,
	})
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("schedule submit: status %d", code)
	}
	done := poll(t, ts, v.ID, 30*time.Second)
	if done.State != StateDone {
		t.Fatalf("schedule job finished %v (%s)", done.State, done.Error)
	}
	return done.Artifact
}

// TestValidationAndNotFound exercises the 4xx surfaces.
func TestValidationAndNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 2})
	createTestNetwork(t, ts, "plant")

	cases := []struct {
		name string
		do   func() int
		want int
	}{
		{"unknown network", func() int {
			_, c := submit(t, ts, "ghost", KindSchedule, nil)
			return c
		}, http.StatusNotFound},
		{"unknown kind", func() int {
			_, c := submit(t, ts, "plant", "explode", nil)
			return c
		}, http.StatusBadRequest},
		{"bad algorithm", func() int {
			_, c := submit(t, ts, "plant", KindSchedule, map[string]any{"alg": "bogus"})
			return c
		}, http.StatusBadRequest},
		{"unknown params field", func() int {
			_, c := submit(t, ts, "plant", KindSchedule, map[string]any{"bogus": 1})
			return c
		}, http.StatusBadRequest},
		{"simulate without artifact", func() int {
			_, c := submit(t, ts, "plant", KindSimulate, nil)
			return c
		}, http.StatusBadRequest},
		{"simulate with unknown artifact", func() int {
			_, c := submit(t, ts, "plant", KindSimulate, map[string]any{"artifact": "nope"})
			return c
		}, http.StatusBadRequest},
		{"unknown job", func() int {
			return doJSON(t, http.MethodGet, ts.URL+"/jobs/j999", nil, nil)
		}, http.StatusNotFound},
		{"unknown artifact", func() int {
			return doJSON(t, http.MethodGet, ts.URL+"/artifacts/nope", nil, nil)
		}, http.StatusNotFound},
		{"duplicate network", func() int {
			var buf bytes.Buffer
			_ = wsan.SaveTestbed(testTestbed(t), &buf)
			return doJSON(t, http.MethodPost, ts.URL+"/networks", map[string]any{
				"name": "plant", "testbed": json.RawMessage(buf.Bytes()),
			}, nil)
		}, http.StatusConflict},
		{"network without topology", func() int {
			return doJSON(t, http.MethodPost, ts.URL+"/networks", map[string]any{
				"name": "empty",
			}, nil)
		}, http.StatusBadRequest},
		{"preset and testbed together", func() int {
			var buf bytes.Buffer
			_ = wsan.SaveTestbed(testTestbed(t), &buf)
			return doJSON(t, http.MethodPost, ts.URL+"/networks", map[string]any{
				"name": "both", "preset": "wustl", "testbed": json.RawMessage(buf.Bytes()),
			}, nil)
		}, http.StatusBadRequest},
	}
	for _, c := range cases {
		if got := c.do(); got != c.want {
			t.Errorf("%s: status %d, want %d", c.name, got, c.want)
		}
	}
}

// TestNetworkLifecycle covers create/list/get/delete.
func TestNetworkLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 2})
	createTestNetwork(t, ts, "a")
	createTestNetwork(t, ts, "b")

	var list struct {
		Networks []NetworkView `json:"networks"`
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/networks", nil, &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if len(list.Networks) != 2 || list.Networks[0].Name != "a" || list.Networks[1].Name != "b" {
		t.Fatalf("list = %+v", list.Networks)
	}
	var view NetworkView
	if code := doJSON(t, http.MethodGet, ts.URL+"/networks/a", nil, &view); code != http.StatusOK {
		t.Fatalf("get: status %d", code)
	}
	if view.ReuseDiameter < 1 || view.CommEdges == 0 || len(view.AccessPoints) != 2 {
		t.Fatalf("view = %+v", view)
	}
	if code := doJSON(t, http.MethodDelete, ts.URL+"/networks/a", nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/networks/a", nil, nil); code != http.StatusNotFound {
		t.Fatalf("get after delete: status %d", code)
	}
	if code := doJSON(t, http.MethodDelete, ts.URL+"/networks/a", nil, nil); code != http.StatusNotFound {
		t.Fatalf("double delete: status %d", code)
	}
}

// TestGracefulShutdown verifies that draining rejects new submissions and
// that a shutdown deadline forcibly cancels a stuck job.
func TestGracefulShutdown(t *testing.T) {
	srv, err := New(Config{Workers: 1, QueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	createTestNetwork(t, ts, "plant")
	art := mustSchedule(t, ts, "plant")
	v, code := submit(t, ts, "plant", KindSimulate, map[string]any{
		"artifact": art, "hyperperiods": 2_000_000, "seed": 9,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	waitState(t, ts, v.ID, StateRunning, 10*time.Second)

	ctx, cancel := contextWithTimeout(50 * time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err == nil {
		t.Fatal("shutdown with a running 2M-hyperperiod job should exceed a 50ms budget")
	}
	// The forced cancellation must have aborted the job.
	j, ok := srv.Job(v.ID)
	if !ok {
		t.Fatal("job disappeared")
	}
	if st := j.State(); st != StateCancelled {
		t.Fatalf("job state after forced shutdown = %v, want cancelled", st)
	}
	// Draining rejects new work with 503.
	if _, code := submit(t, ts, "plant", KindSchedule, map[string]any{"flows": 3}); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", code)
	}
	var health map[string]any
	if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &health); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: status %d, want 503", code)
	}
}

// TestConvergeAndManageJobs runs the remaining job kinds end to end.
func TestConvergeAndManageJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-simulation jobs skipped in -short mode")
	}
	_, ts := newTestServer(t, Config{Workers: 2, QueueCap: 8})
	createTestNetwork(t, ts, "plant")
	art := mustSchedule(t, ts, "plant")

	cv, code := submit(t, ts, "plant", KindConverge, map[string]any{
		"artifact": art, "chunkHyperperiods": 2, "maxChunks": 3, "halfWidth": 0.5,
	})
	if code != http.StatusAccepted {
		t.Fatalf("converge submit: status %d", code)
	}
	mv, code := submit(t, ts, "plant", KindManage, map[string]any{
		"artifact": art, "maxIterations": 1, "epochSlots": 3000,
	})
	if code != http.StatusAccepted {
		t.Fatalf("manage submit: status %d", code)
	}
	cdone := poll(t, ts, cv.ID, 60*time.Second)
	if cdone.State != StateDone {
		t.Fatalf("converge finished %v (%s)", cdone.State, cdone.Error)
	}
	resp, err := http.Get(ts.URL + "/artifacts/" + cdone.Artifact + "/report.json")
	if err != nil {
		t.Fatal(err)
	}
	var rep simReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rep.Converged == nil || rep.Chunks < 1 {
		t.Fatalf("converge report = %+v", rep)
	}
	mdone := poll(t, ts, mv.ID, 60*time.Second)
	if mdone.State != StateDone {
		t.Fatalf("manage finished %v (%s)", mdone.State, mdone.Error)
	}
	resp, err = http.Get(ts.URL + "/artifacts/" + mdone.Artifact + "/schedule.json")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wsan.LoadSchedule(resp.Body); err != nil {
		t.Fatalf("managed schedule does not decode: %v", err)
	}
	resp.Body.Close()
}
