package server

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"wsan"
	"wsan/wsanclient"
)

// TestSoakJob drives the soak job kind end to end: submit a scaled-down
// churn run against the hosted network's topology, wait for completion, and
// check the result.json artifact (decoded through the client SDK's wire
// type) reports real work, a passing oracle, and a canonical digest.
// Resubmitting identical parameters must be a cache hit on the same
// artifact.
func TestSoakJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	createTestNetwork(t, ts, "plant")

	params := map[string]any{
		"flows": 12, "ops": 80, "seed": 7,
		"batchEvery": 20, "batchSize": 3, "oracleEvery": 40,
	}
	v, code := submit(t, ts, "plant", KindSoak, params)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	done := poll(t, ts, v.ID, 60*time.Second)
	if done.State != StateDone {
		t.Fatalf("soak job finished %v (%s)", done.State, done.Error)
	}

	var res wsanclient.SoakResult
	if err := json.Unmarshal(fetchPart(t, ts, done.Artifact, "result.json"), &res); err != nil {
		t.Fatal(err)
	}
	if res.Ops != 80 || res.Flows != 12 {
		t.Fatalf("result does not match params: %+v", res)
	}
	// The network was created with 4 channels; the default must follow it.
	if res.Channels != 4 || res.Nodes != 18 {
		t.Errorf("soak ran on wrong topology: %d channels, %d nodes", res.Channels, res.Nodes)
	}
	if res.Applied == 0 || res.OracleChecks == 0 || res.Digest == "" {
		t.Fatalf("soak did no verified work: %+v", res)
	}
	if res.DeltasPerSec <= 0 || res.Elapsed <= 0 || res.Max < res.P50 {
		t.Errorf("throughput figures missing: %+v", res)
	}

	// Identical parameters hash to the same artifact: a cache hit.
	v2, code := submit(t, ts, "plant", KindSoak, params)
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("resubmit: status %d", code)
	}
	done2 := poll(t, ts, v2.ID, 60*time.Second)
	if done2.State != StateDone || done2.Artifact != done.Artifact {
		t.Fatalf("resubmit produced a different artifact: %+v vs %+v", done2, done)
	}
}

// TestSoakSweepMultiWorker drives the soak harness through the job queue at
// Workers=4: four soak jobs with distinct seeds plus two simulate jobs over
// a schedule artifact, all in flight at once so soak deltas, the replay
// oracle, and the TSCH simulator run concurrently on separate workers. Every
// soak must pass its oracle checkpoints and report a canonical digest;
// distinct seeds must produce distinct digests, and the seed-1 digest must
// match a direct in-process wsan.Soak run with identical parameters — the
// queue, the event bus, and worker concurrency must not perturb schedules.
func TestSoakSweepMultiWorker(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueCap: 16})
	createTestNetwork(t, ts, "plant")
	art := mustSchedule(t, ts, "plant")

	soakParams := func(seed int) map[string]any {
		return map[string]any{
			"flows": 10, "channels": 4, "ops": 60, "seed": seed,
			"batchEvery": 20, "batchSize": 2, "oracleEvery": 30,
		}
	}
	var soakIDs []string
	for seed := 1; seed <= 4; seed++ {
		v, code := submit(t, ts, "plant", KindSoak, soakParams(seed))
		if code != http.StatusAccepted {
			t.Fatalf("soak seed %d: status %d", seed, code)
		}
		soakIDs = append(soakIDs, v.ID)
	}
	var simIDs []string
	for seed := 1; seed <= 2; seed++ {
		v, code := submit(t, ts, "plant", KindSimulate, map[string]any{
			"artifact": art, "hyperperiods": 3, "seed": seed,
		})
		if code != http.StatusAccepted {
			t.Fatalf("simulate seed %d: status %d", seed, code)
		}
		simIDs = append(simIDs, v.ID)
	}

	// Poll all six jobs concurrently so none serializes the others' waits.
	var wg sync.WaitGroup
	results := make([]wsanclient.SoakResult, len(soakIDs))
	for i, id := range soakIDs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			done := poll(t, ts, id, 120*time.Second)
			if done.State != StateDone {
				t.Errorf("soak %s finished %v (%s)", id, done.State, done.Error)
				return
			}
			if err := json.Unmarshal(fetchPart(t, ts, done.Artifact, "result.json"), &results[i]); err != nil {
				t.Error(err)
			}
		}()
	}
	for _, id := range simIDs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if done := poll(t, ts, id, 120*time.Second); done.State != StateDone {
				t.Errorf("simulate %s finished %v (%s)", id, done.State, done.Error)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	digests := make(map[string]int)
	for i, res := range results {
		if res.Applied == 0 || res.OracleChecks < 2 || res.Digest == "" {
			t.Fatalf("soak seed %d did no verified work: %+v", i+1, res)
		}
		if prev, dup := digests[res.Digest]; dup {
			t.Fatalf("seeds %d and %d produced the same digest %s", prev, i+1, res.Digest)
		}
		digests[res.Digest] = i + 1
	}

	// Byte-identity across the queue boundary: an in-process run with the
	// same parameters over the same topology must land on the same digest.
	direct, err := wsan.Soak(context.Background(), wsan.SoakConfig{
		Flows: 10, Channels: 4, Ops: 60, Seed: 1,
		BatchEvery: 20, BatchSize: 2, OracleEvery: 30,
		Testbed: testTestbed(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Digest != results[0].Digest {
		t.Fatalf("queued soak digest %s != direct run digest %s", results[0].Digest, direct.Digest)
	}
}

// TestSoakJobValidation exercises the 400 surface of the soak kind.
func TestSoakJobValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	createTestNetwork(t, ts, "plant")

	bad := []map[string]any{
		{"flows": -1},
		{"ops": -5},
		{"channels": 99}, // the network has 4
		{"batchEvery": -1},
		{"unknownField": true},
	}
	for i, params := range bad {
		if _, code := submit(t, ts, "plant", KindSoak, params); code != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400 (%v)", i, code, params)
		}
	}
}
