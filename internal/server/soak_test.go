package server

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"wsan/wsanclient"
)

// TestSoakJob drives the soak job kind end to end: submit a scaled-down
// churn run against the hosted network's topology, wait for completion, and
// check the result.json artifact (decoded through the client SDK's wire
// type) reports real work, a passing oracle, and a canonical digest.
// Resubmitting identical parameters must be a cache hit on the same
// artifact.
func TestSoakJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	createTestNetwork(t, ts, "plant")

	params := map[string]any{
		"flows": 12, "ops": 80, "seed": 7,
		"batchEvery": 20, "batchSize": 3, "oracleEvery": 40,
	}
	v, code := submit(t, ts, "plant", KindSoak, params)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	done := poll(t, ts, v.ID, 60*time.Second)
	if done.State != StateDone {
		t.Fatalf("soak job finished %v (%s)", done.State, done.Error)
	}

	var res wsanclient.SoakResult
	if err := json.Unmarshal(fetchPart(t, ts, done.Artifact, "result.json"), &res); err != nil {
		t.Fatal(err)
	}
	if res.Ops != 80 || res.Flows != 12 {
		t.Fatalf("result does not match params: %+v", res)
	}
	// The network was created with 4 channels; the default must follow it.
	if res.Channels != 4 || res.Nodes != 18 {
		t.Errorf("soak ran on wrong topology: %d channels, %d nodes", res.Channels, res.Nodes)
	}
	if res.Applied == 0 || res.OracleChecks == 0 || res.Digest == "" {
		t.Fatalf("soak did no verified work: %+v", res)
	}
	if res.DeltasPerSec <= 0 || res.Elapsed <= 0 || res.Max < res.P50 {
		t.Errorf("throughput figures missing: %+v", res)
	}

	// Identical parameters hash to the same artifact: a cache hit.
	v2, code := submit(t, ts, "plant", KindSoak, params)
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("resubmit: status %d", code)
	}
	done2 := poll(t, ts, v2.ID, 60*time.Second)
	if done2.State != StateDone || done2.Artifact != done.Artifact {
		t.Fatalf("resubmit produced a different artifact: %+v vs %+v", done2, done)
	}
}

// TestSoakJobValidation exercises the 400 surface of the soak kind.
func TestSoakJobValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	createTestNetwork(t, ts, "plant")

	bad := []map[string]any{
		{"flows": -1},
		{"ops": -5},
		{"channels": 99}, // the network has 4
		{"batchEvery": -1},
		{"unknownField": true},
	}
	for i, params := range bad {
		if _, code := submit(t, ts, "plant", KindSoak, params); code != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400 (%v)", i, code, params)
		}
	}
}
