package storage

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"wsan/internal/obs"
)

// On-disk layout under the store root:
//
//	root/
//	  objects/<id>/manifest.json   artifact metadata + part digests
//	  objects/<id>/<part files>    exact part bytes, one file per part
//	  tmp/<id>.<seq>/              write staging (never visible; cleared at open)
//	  quarantine/<id>.<n>/         entries the warm-scan or a read refused to serve
//
// Writes stage the whole artifact — every part plus the manifest, each
// fsynced — in a fresh tmp directory, then publish it with one
// os.Rename(tmp, objects/<id>). Rename is atomic on POSIX, so a crash at
// any point leaves either no visible artifact (staging debris in tmp/,
// removed at next open) or a complete one. Nothing under objects/ is ever
// written in place.

// manifest is the artifact metadata document stored next to the parts.
type manifest struct {
	ID      string         `json:"id"`
	Kind    string         `json:"kind"`
	Created time.Time      `json:"created"`
	Parts   []manifestPart `json:"parts"`
}

// manifestPart records one part's name, size, and content digest.
type manifestPart struct {
	Name   string `json:"name"`
	Size   int64  `json:"size"`
	SHA256 string `json:"sha256"`
}

// manifestName is the metadata file of each artifact directory. The name
// is reserved: a part may not be called this.
const manifestName = "manifest.json"

// diskEntry is the in-memory index record of one on-disk artifact — the
// manifest, pre-validated at warm-scan. Part contents stay on disk.
type diskEntry struct {
	man  manifest
	size int64
}

// DiskOptions parameterizes OpenDisk.
type DiskOptions struct {
	// Metrics (nil to disable) receives server.cache.{quarantined,stored,
	// dup_writes} plus hit/miss counters for direct Lookup calls.
	Metrics obs.Sink
	// NoSync skips the per-file fsync during writes. Crash durability is
	// lost (atomicity via rename is kept on journaling filesystems);
	// meant for bulk loads and benchmarks, not for serving daemons.
	NoSync bool
}

// Disk is the durable Store backend. The part payloads live on disk; only
// the manifests are resident, so capacity is bounded by the filesystem,
// not the process. Safe for concurrent use.
type Disk struct {
	root   string
	mets   obs.Sink
	noSync bool

	mu      sync.RWMutex
	entries map[string]*diskEntry
	size    int64
	tmpSeq  int
	qSeq    int
	closed  bool

	// Failure-injection points for crash-recovery tests: when non-nil they
	// run before the real fsync / rename and abort the operation by
	// returning an error (simulating a crash at that point).
	failSync   func(path string) error
	failRename func(oldpath, newpath string) error
}

// OpenDisk opens (creating if needed) a disk store rooted at dir and
// warm-scans it: every artifact directory's manifest is loaded and every
// part's size and SHA-256 digest verified. Entries that fail verification
// — truncated parts, bit rot, missing files, unreadable manifests — are
// moved to root/quarantine (counted in server.cache.quarantined) rather
// than served. Staging debris from writes interrupted by a crash is
// deleted: it was never visible.
func OpenDisk(dir string, opts DiskOptions) (*Disk, error) {
	d := &Disk{
		root:    dir,
		mets:    opts.Metrics,
		noSync:  opts.NoSync,
		entries: make(map[string]*diskEntry),
	}
	for _, sub := range []string{d.objectsDir(), d.tmpDir(), d.quarantineDir()} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, fmt.Errorf("storage: creating %s: %w", sub, err)
		}
	}
	// Clear write staging left over from a crash mid-Put.
	debris, err := os.ReadDir(d.tmpDir())
	if err != nil {
		return nil, fmt.Errorf("storage: scanning staging: %w", err)
	}
	for _, e := range debris {
		_ = os.RemoveAll(filepath.Join(d.tmpDir(), e.Name()))
	}
	if err := d.warmScan(); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *Disk) objectsDir() string    { return filepath.Join(d.root, "objects") }
func (d *Disk) tmpDir() string        { return filepath.Join(d.root, "tmp") }
func (d *Disk) quarantineDir() string { return filepath.Join(d.root, "quarantine") }
func (d *Disk) artifactDir(id string) string {
	return filepath.Join(d.objectsDir(), id)
}

// Root returns the store's root directory.
func (d *Disk) Root() string { return d.root }

// warmScan indexes and verifies every artifact directory.
func (d *Disk) warmScan() error {
	dirs, err := os.ReadDir(d.objectsDir())
	if err != nil {
		return fmt.Errorf("storage: scanning %s: %w", d.objectsDir(), err)
	}
	for _, de := range dirs {
		id := de.Name()
		if !de.IsDir() || !validID(id) {
			d.quarantine(id)
			continue
		}
		entry, err := d.verifyEntry(id)
		if err != nil {
			d.quarantine(id)
			continue
		}
		d.entries[id] = entry
		d.size += entry.size
	}
	return nil
}

// verifyEntry loads one artifact directory's manifest and checks every
// part file against its recorded size and digest.
func (d *Disk) verifyEntry(id string) (*diskEntry, error) {
	raw, err := os.ReadFile(filepath.Join(d.artifactDir(id), manifestName))
	if err != nil {
		return nil, err
	}
	var man manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("storage: artifact %s: bad manifest: %w", id, err)
	}
	if man.ID != id {
		return nil, fmt.Errorf("storage: artifact %s: manifest claims ID %s", id, man.ID)
	}
	entry := &diskEntry{man: man}
	for _, p := range man.Parts {
		if err := validPartName(p.Name); err != nil {
			return nil, err
		}
		data, err := os.ReadFile(filepath.Join(d.artifactDir(id), p.Name))
		if err != nil {
			return nil, err
		}
		if int64(len(data)) != p.Size {
			return nil, fmt.Errorf("storage: artifact %s part %s: %d bytes, manifest says %d",
				id, p.Name, len(data), p.Size)
		}
		if sum := sha256.Sum256(data); hex.EncodeToString(sum[:]) != p.SHA256 {
			return nil, fmt.Errorf("storage: artifact %s part %s: digest mismatch", id, p.Name)
		}
		entry.size += p.Size
	}
	return entry, nil
}

// quarantine moves an artifact directory aside so it is never served,
// preserving the bytes for inspection.
func (d *Disk) quarantine(id string) {
	d.qSeq++
	dst := filepath.Join(d.quarantineDir(), fmt.Sprintf("%s.%d", id, d.qSeq))
	if err := os.Rename(d.artifactDir(id), dst); err != nil {
		// A rename that fails (cross-device, permissions) must still get
		// the entry out of serving position.
		_ = os.RemoveAll(d.artifactDir(id))
	}
	if d.mets != nil {
		d.mets.Count("server.cache.quarantined", 1)
	}
}

// validID accepts hex content addresses (the only IDs the daemon writes).
func validID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for _, c := range id {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// validPartName rejects part names that cannot be one plain file inside
// the artifact directory.
func validPartName(name string) error {
	switch {
	case name == "" || name == "." || name == "..":
		return fmt.Errorf("storage: invalid part name %q", name)
	case name == manifestName:
		return fmt.Errorf("storage: part name %q is reserved", name)
	case strings.ContainsAny(name, "/\\") || strings.ContainsRune(name, 0):
		return fmt.Errorf("storage: invalid part name %q", name)
	}
	return nil
}

// Lookup implements Store.
func (d *Disk) Lookup(id string) (*Artifact, bool) {
	a, ok := d.Get(id)
	countProbe(d.mets, ok)
	return a, ok
}

// Get implements Store: the parts are read from disk into fresh buffers
// (never shared with another caller) and re-verified against the manifest
// digests — an artifact corrupted after the warm-scan is quarantined at
// read time instead of served.
func (d *Disk) Get(id string) (*Artifact, bool) {
	d.mu.RLock()
	entry, ok := d.entries[id]
	d.mu.RUnlock()
	if !ok {
		return nil, false
	}
	parts := make(map[string][]byte, len(entry.man.Parts))
	for _, p := range entry.man.Parts {
		data, err := os.ReadFile(filepath.Join(d.artifactDir(id), p.Name))
		if err == nil && int64(len(data)) == p.Size {
			if sum := sha256.Sum256(data); hex.EncodeToString(sum[:]) == p.SHA256 {
				parts[p.Name] = data
				continue
			}
		}
		// The entry passed the warm-scan but fails now: quarantine it.
		d.mu.Lock()
		if cur, still := d.entries[id]; still && cur == entry {
			delete(d.entries, id)
			d.size -= entry.size
			d.quarantine(id)
		}
		d.mu.Unlock()
		return nil, false
	}
	return NewArtifact(id, entry.man.Kind, entry.man.Created, parts), true
}

// Put implements Store: stage every part plus the manifest in a fresh tmp
// directory (each file fsynced unless NoSync), then publish atomically
// with one rename. A crash anywhere before the rename leaves only staging
// debris the next open removes.
func (d *Disk) Put(id, kind string, parts map[string][]byte) (*Artifact, error) {
	if !validID(id) {
		return nil, fmt.Errorf("storage: invalid artifact ID %q", id)
	}
	names := make([]string, 0, len(parts))
	for name := range parts {
		if err := validPartName(name); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	sort.Strings(names)

	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, fmt.Errorf("storage: disk store closed")
	}
	if _, ok := d.entries[id]; ok {
		d.mu.Unlock()
		if d.mets != nil {
			d.mets.Count("server.cache.dup_writes", 1)
		}
		a, ok := d.Get(id)
		if !ok {
			return nil, fmt.Errorf("storage: artifact %s vanished during duplicate put", id)
		}
		return a, nil
	}
	d.tmpSeq++
	staging := filepath.Join(d.tmpDir(), fmt.Sprintf("%s.%d", id, d.tmpSeq))
	d.mu.Unlock()

	created := time.Now().UTC()
	man := manifest{ID: id, Kind: kind, Created: created}
	if err := os.MkdirAll(staging, 0o755); err != nil {
		return nil, fmt.Errorf("storage: staging %s: %w", id, err)
	}
	cleanup := func(err error) (*Artifact, error) {
		_ = os.RemoveAll(staging)
		return nil, err
	}
	for _, name := range names {
		data := parts[name]
		sum := sha256.Sum256(data)
		man.Parts = append(man.Parts, manifestPart{
			Name: name, Size: int64(len(data)), SHA256: hex.EncodeToString(sum[:]),
		})
		if err := d.writeFile(filepath.Join(staging, name), data); err != nil {
			return cleanup(err)
		}
	}
	manRaw, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return cleanup(err)
	}
	if err := d.writeFile(filepath.Join(staging, manifestName), append(manRaw, '\n')); err != nil {
		return cleanup(err)
	}

	entry := &diskEntry{man: man, size: partBytes(parts)}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return cleanup(fmt.Errorf("storage: disk store closed"))
	}
	if _, ok := d.entries[id]; ok {
		// A racing Put published this ID while we staged: keep the first.
		d.mu.Unlock()
		if d.mets != nil {
			d.mets.Count("server.cache.dup_writes", 1)
		}
		_ = os.RemoveAll(staging)
		a, ok := d.Get(id)
		if !ok {
			return nil, fmt.Errorf("storage: artifact %s vanished during duplicate put", id)
		}
		return a, nil
	}
	if err := d.rename(staging, d.artifactDir(id)); err != nil {
		d.mu.Unlock()
		return cleanup(fmt.Errorf("storage: publishing %s: %w", id, err))
	}
	d.entries[id] = entry
	d.size += entry.size
	d.mu.Unlock()
	d.syncDir(d.objectsDir())
	if d.mets != nil {
		d.mets.Count("server.cache.stored", 1)
	}
	return NewArtifact(id, kind, created, copyParts(parts)), nil
}

// writeFile writes one staged file and fsyncs it (honoring NoSync and the
// failSync injection point).
func (d *Disk) writeFile(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if fail := d.failSync; fail != nil {
		if err := fail(path); err != nil {
			f.Close()
			return err
		}
	}
	if !d.noSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// rename publishes a staged artifact (honoring the failRename injection
// point).
func (d *Disk) rename(oldpath, newpath string) error {
	if fail := d.failRename; fail != nil {
		if err := fail(oldpath, newpath); err != nil {
			return err
		}
	}
	return os.Rename(oldpath, newpath)
}

// syncDir best-effort fsyncs a directory so the published rename itself is
// durable.
func (d *Disk) syncDir(path string) {
	if d.noSync {
		return
	}
	if f, err := os.Open(path); err == nil {
		_ = f.Sync()
		f.Close()
	}
}

// Delete implements Store.
func (d *Disk) Delete(id string) bool {
	d.mu.Lock()
	entry, ok := d.entries[id]
	if !ok {
		d.mu.Unlock()
		return false
	}
	delete(d.entries, id)
	d.size -= entry.size
	d.mu.Unlock()
	_ = os.RemoveAll(d.artifactDir(id))
	return true
}

// Len implements Store.
func (d *Disk) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.entries)
}

// Bytes implements Store.
func (d *Disk) Bytes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.size
}

// List implements Store.
func (d *Disk) List(after string, limit int) ([]Info, string) {
	d.mu.RLock()
	ids := make([]string, 0, len(d.entries))
	for id := range d.entries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	page, next := pageIDs(ids, after, limit)
	infos := make([]Info, 0, len(page))
	for _, id := range page {
		e := d.entries[id]
		names := make([]string, 0, len(e.man.Parts))
		for _, p := range e.man.Parts {
			names = append(names, p.Name)
		}
		sort.Strings(names)
		infos = append(infos, Info{ID: id, Kind: e.man.Kind, Created: e.man.Created, Parts: names, Bytes: e.size})
	}
	d.mu.RUnlock()
	return infos, next
}

// Close implements Store.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	d.entries = make(map[string]*diskEntry)
	d.size = 0
	return nil
}

// Quarantined counts the entries currently under root/quarantine —
// diagnostics for tests and the warm-scan bench.
func (d *Disk) Quarantined() int {
	dirs, err := os.ReadDir(d.quarantineDir())
	if err != nil {
		return 0
	}
	return len(dirs)
}
