package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"wsan/internal/obs"
)

// reopen closes nothing (a crash closes nothing) and opens a fresh Disk
// over the same root — the daemon-restart primitive every recovery test
// uses.
func reopen(t *testing.T, dir string, mets obs.Sink) *Disk {
	t.Helper()
	d, err := OpenDisk(dir, DiskOptions{Metrics: mets})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDiskSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d := reopen(t, dir, nil)
	parts := map[string][]byte{"schedule.json": []byte(`{"slots":8}`), "summary.json": []byte(`{"n":1}`)}
	if _, err := d.Put(testID(0), "schedule", parts); err != nil {
		t.Fatal(err)
	}
	wantBytes := d.Bytes()

	d = reopen(t, dir, nil)
	a, ok := d.Get(testID(0))
	if !ok {
		t.Fatal("artifact lost across reopen")
	}
	for name, want := range parts {
		if !bytes.Equal(a.Part(name), want) {
			t.Fatalf("part %s differs after reopen", name)
		}
	}
	if a.Kind != "schedule" || d.Len() != 1 || d.Bytes() != wantBytes {
		t.Fatalf("metadata drifted: kind=%s len=%d bytes=%d", a.Kind, d.Len(), d.Bytes())
	}
}

func TestDiskWarmScanQuarantinesTampering(t *testing.T) {
	cases := []struct {
		name   string
		tamper func(t *testing.T, artDir string)
	}{
		{"truncated part", func(t *testing.T, artDir string) {
			path := filepath.Join(artDir, "p.json")
			data, _ := os.ReadFile(path)
			if err := os.WriteFile(path, data[:len(data)-2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"corrupt part byte", func(t *testing.T, artDir string) {
			path := filepath.Join(artDir, "p.json")
			data, _ := os.ReadFile(path)
			data[0] ^= 0xff
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"missing part", func(t *testing.T, artDir string) {
			if err := os.Remove(filepath.Join(artDir, "p.json")); err != nil {
				t.Fatal(err)
			}
		}},
		{"missing manifest", func(t *testing.T, artDir string) {
			if err := os.Remove(filepath.Join(artDir, manifestName)); err != nil {
				t.Fatal(err)
			}
		}},
		{"corrupt manifest", func(t *testing.T, artDir string) {
			if err := os.WriteFile(filepath.Join(artDir, manifestName), []byte(`{not json`), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			reg := obs.NewRegistry()
			d := reopen(t, dir, reg)
			if _, err := d.Put(testID(0), "schedule", map[string][]byte{"p.json": []byte(`{"v":12345}`)}); err != nil {
				t.Fatal(err)
			}
			if _, err := d.Put(testID(1), "schedule", map[string][]byte{"p.json": []byte(`{"v":2}`)}); err != nil {
				t.Fatal(err)
			}
			tc.tamper(t, d.artifactDir(testID(0)))

			d = reopen(t, dir, reg)
			if _, ok := d.Get(testID(0)); ok {
				t.Fatal("tampered artifact must never be served")
			}
			if _, ok := d.Get(testID(1)); !ok {
				t.Fatal("intact artifact must survive the scan")
			}
			if d.Len() != 1 {
				t.Fatalf("Len = %d, want 1", d.Len())
			}
			if got := reg.CounterValue("server.cache.quarantined"); got != 1 {
				t.Fatalf("quarantined counter = %d, want 1", got)
			}
			if d.Quarantined() != 1 {
				t.Fatalf("quarantine directory holds %d entries, want 1", d.Quarantined())
			}
		})
	}
}

func TestDiskReadTimeQuarantine(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	d := reopen(t, dir, reg)
	if _, err := d.Put(testID(0), "schedule", map[string][]byte{"p.json": []byte(`{"v":1}`)}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the part after the warm-scan already blessed it.
	path := filepath.Join(d.artifactDir(testID(0)), "p.json")
	if err := os.WriteFile(path, []byte(`{"v":9}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(testID(0)); ok {
		t.Fatal("artifact corrupted after scan must not be served")
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d after read-time quarantine, want 0", d.Len())
	}
	if got := reg.CounterValue("server.cache.quarantined"); got != 1 {
		t.Fatalf("quarantined counter = %d, want 1", got)
	}
}

func TestDiskPutFailureLeavesNoArtifact(t *testing.T) {
	for _, point := range []string{"sync", "rename"} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			d := reopen(t, dir, nil)
			boom := fmt.Errorf("injected %s failure", point)
			if point == "sync" {
				d.failSync = func(string) error { return boom }
			} else {
				d.failRename = func(string, string) error { return boom }
			}
			if _, err := d.Put(testID(0), "schedule", map[string][]byte{"p.json": []byte(`{}`)}); err == nil {
				t.Fatal("Put should surface the injected failure")
			}
			if _, ok := d.Get(testID(0)); ok {
				t.Fatal("failed Put must leave no visible artifact")
			}
			// The graceful error path also cleans its staging.
			debris, err := os.ReadDir(d.tmpDir())
			if err != nil {
				t.Fatal(err)
			}
			if len(debris) != 0 {
				t.Fatalf("staging holds %d entries after failed Put", len(debris))
			}
			// And the store keeps working once the fault clears.
			d.failSync, d.failRename = nil, nil
			if _, err := d.Put(testID(0), "schedule", map[string][]byte{"p.json": []byte(`{}`)}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDiskCrashRecoveryProperty is the kill-mid-write property test: Puts
// are interrupted at injected fsync/rename points by a panic (simulating
// the process dying with staging debris on disk and, for rename, the write
// lock never released — the instance is abandoned exactly as a crash would
// leave it). Invariant across every seed and crash point: a warm-scan
// after the crash serves every artifact whose Put returned success,
// byte-identically, and never serves — or counts as quarantined — a
// partial artifact, because crash-during-write leaves debris only in the
// invisible staging area.
func TestDiskCrashRecoveryProperty(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			d := reopen(t, dir, nil)
			expected := map[string]map[string][]byte{}

			crash := func(put func()) {
				defer func() {
					if recover() == nil {
						t.Fatal("expected the injected crash to fire")
					}
				}()
				put()
			}

			const ops = 40
			for i := 0; i < ops; i++ {
				id := testID(i)
				parts := map[string][]byte{}
				for p := 0; p < 1+rng.Intn(3); p++ {
					buf := make([]byte, 16+rng.Intn(64))
					rng.Read(buf)
					parts[fmt.Sprintf("part%d.json", p)] = buf
				}
				switch rng.Intn(4) {
				case 0: // crash during a part/manifest fsync
					nth, calls := rng.Intn(len(parts)+1), 0
					d.failSync = func(string) error {
						if calls == nth {
							panic("crash at fsync")
						}
						calls++
						return nil
					}
					crash(func() { _, _ = d.Put(id, "schedule", parts) })
					// The instance may hold a poisoned lock — abandon it
					// and recover, as a restart would.
					d = reopen(t, dir, nil)
				case 1: // crash at the publishing rename
					d.failRename = func(string, string) error { panic("crash at rename") }
					crash(func() { _, _ = d.Put(id, "schedule", parts) })
					d = reopen(t, dir, nil)
				default: // clean write
					if _, err := d.Put(id, "schedule", parts); err != nil {
						t.Fatal(err)
					}
					expected[id] = parts
				}
				if rng.Intn(8) == 0 {
					d = reopen(t, dir, nil)
				}
			}

			reg := obs.NewRegistry()
			d = reopen(t, dir, reg)
			if d.Len() != len(expected) {
				t.Fatalf("recovered %d artifacts, want %d", d.Len(), len(expected))
			}
			for id, parts := range expected {
				a, ok := d.Get(id)
				if !ok {
					t.Fatalf("committed artifact %s lost", id)
				}
				for name, want := range parts {
					if !bytes.Equal(a.Part(name), want) {
						t.Fatalf("artifact %s part %s differs after recovery", id, name)
					}
				}
			}
			for i := 0; i < ops; i++ {
				if _, ok := expected[testID(i)]; ok {
					continue
				}
				if _, found := d.Get(testID(i)); found {
					t.Fatalf("crashed Put of %s became visible", testID(i))
				}
			}
			// Crashes land in staging, never in objects/: nothing to
			// quarantine.
			if got := reg.CounterValue("server.cache.quarantined"); got != 0 {
				t.Fatalf("recovery quarantined %d entries, want 0", got)
			}
		})
	}
}

func TestDiskRejectsBadNames(t *testing.T) {
	d := reopen(t, t.TempDir(), nil)
	defer d.Close()
	if _, err := d.Put("../escape", "schedule", map[string][]byte{"p.json": nil}); err == nil {
		t.Fatal("non-hex artifact ID must be rejected")
	}
	for _, part := range []string{"", ".", "..", "a/b.json", `a\b`, manifestName} {
		if _, err := d.Put(testID(0), "schedule", map[string][]byte{part: []byte(`{}`)}); err == nil {
			t.Fatalf("part name %q must be rejected", part)
		}
	}
	if d.Len() != 0 {
		t.Fatal("rejected puts must store nothing")
	}
}
