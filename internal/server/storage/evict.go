package storage

import (
	"container/list"
	"sort"
	"sync"
	"time"

	"wsan/internal/obs"
)

// Eviction describes one artifact an Evicting store removed.
type Eviction struct {
	// ID and Kind identify the evicted artifact.
	ID   string `json:"id"`
	Kind string `json:"kind"`
	// Bytes is the artifact's part payload size.
	Bytes int64 `json:"bytes"`
	// Reason is "capacity" (byte-budget LRU) or "ttl".
	Reason string `json:"reason"`
}

// EvictConfig parameterizes NewEvicting.
type EvictConfig struct {
	// MaxBytes is the byte budget over the inner store's part payload;
	// exceeding it evicts least-recently-used artifacts until back within
	// budget. 0 means unbounded.
	MaxBytes int64
	// TTL, when positive, evicts artifacts older than this — age measured
	// from when this wrapper indexed the artifact (its Put), or from its
	// Created timestamp for artifacts recovered by a warm-scan. Expired
	// entries are never served: an access finding one evicts it and reports
	// a miss; SweepExpired reclaims the rest.
	TTL time.Duration
	// Metrics (nil to disable) receives server.cache.evictions and the
	// server.cache.{bytes,artifacts} gauges, plus hit/miss counters for
	// Lookup calls made on this store. Leave nil when the wrapper bounds
	// an internal tier (e.g. the memory front of a Tiered store), so tier
	// trimming is not reported as cache eviction.
	Metrics obs.Sink
	// OnEvict, when non-nil, observes every eviction (after the artifact
	// is gone). Called without internal locks held.
	OnEvict func(Eviction)
	// Now overrides the clock (tests); nil uses time.Now.
	Now func() time.Time
}

// Evicting bounds any Store with a byte-budget LRU plus optional TTL. The
// access-ordered index spans whatever the inner store holds — wrapped
// around a Tiered store an eviction deletes the artifact from both tiers.
// Safe for concurrent use.
type Evicting struct {
	inner Store
	cfg   EvictConfig

	mu   sync.Mutex
	lru  *list.List // front = most recently used
	idx  map[string]*list.Element
	size int64
}

// lruEntry is one artifact's bookkeeping in the access-ordered index.
type lruEntry struct {
	id      string
	kind    string
	bytes   int64
	created time.Time
}

// NewEvicting wraps inner with the eviction policy. The index is seeded
// from the inner store's current contents (recency approximated by
// creation time — all a warm-scanned disk store can know), and the budget
// and TTL are enforced immediately, so reopening a daemon with a smaller
// budget trims the store at startup.
func NewEvicting(inner Store, cfg EvictConfig) *Evicting {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	e := &Evicting{
		inner: inner,
		cfg:   cfg,
		lru:   list.New(),
		idx:   make(map[string]*list.Element),
	}
	infos, _ := inner.List("", 0)
	sortInfosByCreated(infos)
	for _, info := range infos {
		// Oldest first, each pushed to the front: the newest artifact ends
		// up most recently used.
		elem := e.lru.PushFront(&lruEntry{id: info.ID, kind: info.Kind, bytes: info.Bytes, created: info.Created})
		e.idx[info.ID] = elem
		e.size += info.Bytes
	}
	e.mu.Lock()
	evicted := e.enforceLocked()
	evicted = append(evicted, e.sweepExpiredLocked()...)
	e.gaugeLocked()
	e.mu.Unlock()
	e.report(evicted)
	return e
}

// sortInfosByCreated orders infos oldest-first (ID tiebreak for
// determinism).
func sortInfosByCreated(infos []Info) {
	sort.Slice(infos, func(i, j int) bool {
		if !infos[i].Created.Equal(infos[j].Created) {
			return infos[i].Created.Before(infos[j].Created)
		}
		return infos[i].ID < infos[j].ID
	})
}

// Lookup implements Store.
func (e *Evicting) Lookup(id string) (*Artifact, bool) {
	a, ok := e.Get(id)
	countProbe(e.cfg.Metrics, ok)
	return a, ok
}

// Get implements Store: a hit refreshes the artifact's recency; an entry
// past its TTL is evicted and reported as a miss.
func (e *Evicting) Get(id string) (*Artifact, bool) {
	e.mu.Lock()
	elem, ok := e.idx[id]
	if !ok {
		e.mu.Unlock()
		return nil, false
	}
	ent := elem.Value.(*lruEntry)
	if e.expiredLocked(ent) {
		ev := e.evictLocked(elem, "ttl")
		e.gaugeLocked()
		e.mu.Unlock()
		e.report([]Eviction{ev})
		return nil, false
	}
	a, ok := e.inner.Get(id)
	if !ok {
		// The inner store dropped it underneath us (e.g. a disk read
		// quarantined the entry): fix the index.
		e.removeLocked(elem)
		e.gaugeLocked()
		e.mu.Unlock()
		return nil, false
	}
	e.lru.MoveToFront(elem)
	e.mu.Unlock()
	return a, true
}

// Put implements Store: store, index as most recently used, then evict
// until back within the byte budget.
func (e *Evicting) Put(id, kind string, parts map[string][]byte) (*Artifact, error) {
	a, err := e.inner.Put(id, kind, parts)
	if err != nil {
		return nil, err
	}
	e.index(a)
	return a, nil
}

// putArtifact installs an already-built immutable artifact (tier
// promotion), avoiding a part copy when the inner store is a *Memory.
func (e *Evicting) putArtifact(a *Artifact) {
	if mem, ok := e.inner.(*Memory); ok {
		mem.put(a)
	} else if _, err := e.inner.Put(a.ID, a.Kind, a.parts); err != nil {
		return
	}
	e.index(a)
}

// index records a stored artifact as most recently used and enforces the
// budget.
func (e *Evicting) index(a *Artifact) {
	e.mu.Lock()
	if elem, ok := e.idx[a.ID]; ok {
		// Duplicate put: the inner store kept its first copy; refresh
		// recency only.
		e.lru.MoveToFront(elem)
		e.mu.Unlock()
		return
	}
	// The TTL clock for a fresh put is this wrapper's clock, not the
	// artifact's Created stamp — the two agree in production, and the
	// configured clock must stay authoritative under tests.
	elem := e.lru.PushFront(&lruEntry{id: a.ID, kind: a.Kind, bytes: a.size, created: e.cfg.Now()})
	e.idx[a.ID] = elem
	e.size += a.size
	evicted := e.enforceLocked()
	e.gaugeLocked()
	e.mu.Unlock()
	e.report(evicted)
}

// expiredLocked reports whether an entry is past the TTL.
func (e *Evicting) expiredLocked(ent *lruEntry) bool {
	return e.cfg.TTL > 0 && e.cfg.Now().Sub(ent.created) > e.cfg.TTL
}

// enforceLocked evicts least-recently-used entries until the byte budget
// is met. The entry just touched sits at the front, so it is evicted only
// when it alone exceeds the budget.
func (e *Evicting) enforceLocked() []Eviction {
	if e.cfg.MaxBytes <= 0 {
		return nil
	}
	var evicted []Eviction
	for e.size > e.cfg.MaxBytes && e.lru.Len() > 0 {
		evicted = append(evicted, e.evictLocked(e.lru.Back(), "capacity"))
	}
	return evicted
}

// sweepExpiredLocked evicts every TTL-expired entry.
func (e *Evicting) sweepExpiredLocked() []Eviction {
	if e.cfg.TTL <= 0 {
		return nil
	}
	var evicted []Eviction
	for elem := e.lru.Back(); elem != nil; {
		prev := elem.Prev()
		if ent := elem.Value.(*lruEntry); e.expiredLocked(ent) {
			evicted = append(evicted, e.evictLocked(elem, "ttl"))
		}
		elem = prev
	}
	return evicted
}

// SweepExpired reclaims TTL-expired artifacts that have not been touched
// since expiring (the daemon calls it periodically). It returns how many
// artifacts were evicted.
func (e *Evicting) SweepExpired() int {
	e.mu.Lock()
	evicted := e.sweepExpiredLocked()
	e.gaugeLocked()
	e.mu.Unlock()
	e.report(evicted)
	return len(evicted)
}

// evictLocked removes one entry from the index and the inner store.
func (e *Evicting) evictLocked(elem *list.Element, reason string) Eviction {
	ent := elem.Value.(*lruEntry)
	e.removeLocked(elem)
	e.inner.Delete(ent.id)
	if e.cfg.Metrics != nil {
		e.cfg.Metrics.Count("server.cache.evictions", 1)
	}
	return Eviction{ID: ent.id, Kind: ent.kind, Bytes: ent.bytes, Reason: reason}
}

// removeLocked drops an index entry without touching the inner store.
func (e *Evicting) removeLocked(elem *list.Element) {
	ent := elem.Value.(*lruEntry)
	e.lru.Remove(elem)
	delete(e.idx, ent.id)
	e.size -= ent.bytes
}

// report fires the eviction callback outside the lock.
func (e *Evicting) report(evicted []Eviction) {
	if e.cfg.OnEvict == nil {
		return
	}
	for _, ev := range evicted {
		e.cfg.OnEvict(ev)
	}
}

// gaugeLocked refreshes the cache size gauges.
func (e *Evicting) gaugeLocked() {
	if e.cfg.Metrics == nil {
		return
	}
	e.cfg.Metrics.Gauge("server.cache.bytes", float64(e.size))
	e.cfg.Metrics.Gauge("server.cache.artifacts", float64(e.lru.Len()))
}

// Delete implements Store.
func (e *Evicting) Delete(id string) bool {
	e.mu.Lock()
	if elem, ok := e.idx[id]; ok {
		e.removeLocked(elem)
	}
	ok := e.inner.Delete(id)
	e.gaugeLocked()
	e.mu.Unlock()
	return ok
}

// Len implements Store.
func (e *Evicting) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lru.Len()
}

// Bytes implements Store.
func (e *Evicting) Bytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.size
}

// List implements Store (delegated: the inner store holds exactly the
// indexed artifacts).
func (e *Evicting) List(after string, limit int) ([]Info, string) {
	return e.inner.List(after, limit)
}

// Close implements Store.
func (e *Evicting) Close() error {
	e.mu.Lock()
	e.lru.Init()
	e.idx = make(map[string]*list.Element)
	e.size = 0
	e.mu.Unlock()
	return e.inner.Close()
}
