package storage

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"wsan/internal/obs"
)

// fakeClock is a manually advanced time source for TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// refModel is the naive reference implementation of the byte-budget LRU +
// TTL policy: a slice ordered least- to most-recently-used, re-scanned on
// every operation. Deliberately simple enough to be obviously correct.
type refModel struct {
	maxBytes int64
	ttl      time.Duration
	now      func() time.Time
	order    []refEntry // index 0 = least recently used
}

type refEntry struct {
	id      string
	bytes   int64
	created time.Time
}

func (m *refModel) expired(e refEntry) bool {
	return m.ttl > 0 && m.now().Sub(e.created) > m.ttl
}

func (m *refModel) bytes() int64 {
	var n int64
	for _, e := range m.order {
		n += e.bytes
	}
	return n
}

func (m *refModel) find(id string) int {
	for i, e := range m.order {
		if e.id == id {
			return i
		}
	}
	return -1
}

func (m *refModel) remove(i int) {
	m.order = append(m.order[:i:i], m.order[i+1:]...)
}

func (m *refModel) enforce() {
	if m.maxBytes <= 0 {
		return
	}
	for m.bytes() > m.maxBytes && len(m.order) > 0 {
		m.remove(0)
	}
}

func (m *refModel) put(id string, bytes int64) {
	if i := m.find(id); i >= 0 {
		// Duplicate put refreshes recency only (the store keeps its first
		// copy).
		e := m.order[i]
		m.remove(i)
		m.order = append(m.order, e)
		return
	}
	m.order = append(m.order, refEntry{id: id, bytes: bytes, created: m.now()})
	m.enforce()
}

// get reports a hit, touching the entry; an expired entry is evicted and
// misses.
func (m *refModel) get(id string) bool {
	i := m.find(id)
	if i < 0 {
		return false
	}
	e := m.order[i]
	if m.expired(e) {
		m.remove(i)
		return false
	}
	m.remove(i)
	m.order = append(m.order, e)
	return true
}

func (m *refModel) sweep() {
	kept := m.order[:0]
	for _, e := range m.order {
		if !m.expired(e) {
			kept = append(kept, e)
		}
	}
	m.order = kept
}

func (m *refModel) ids() map[string]bool {
	ids := make(map[string]bool, len(m.order))
	for _, e := range m.order {
		ids[e.id] = true
	}
	return ids
}

// agree fails the test unless store and model hold exactly the same IDs
// with the same byte total.
func agree(t *testing.T, step int, e *Evicting, m *refModel) {
	t.Helper()
	want := m.ids()
	if e.Len() != len(want) {
		t.Fatalf("step %d: store holds %d artifacts, model %d", step, e.Len(), len(want))
	}
	if e.Bytes() != m.bytes() {
		t.Fatalf("step %d: store accounts %d bytes, model %d", step, e.Bytes(), m.bytes())
	}
	infos, _ := e.List("", 0)
	for _, info := range infos {
		if !want[info.ID] {
			t.Fatalf("step %d: store serves %s which the model evicted", step, info.ID)
		}
	}
}

// TestEvictingMatchesReferenceModel drives Evicting and the naive model
// through the same random schedule of puts, gets, clock advances, and
// sweeps, demanding identical contents after every step. Runs over both a
// memory and a disk inner store so the policy is backend-independent.
func TestEvictingMatchesReferenceModel(t *testing.T) {
	inners := map[string]func(t *testing.T) Store{
		"memory": func(t *testing.T) Store { return NewMemory(nil) },
		"disk": func(t *testing.T) Store {
			d, err := OpenDisk(t.TempDir(), DiskOptions{NoSync: true})
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
	}
	for name, mkInner := range inners {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				clock := newFakeClock()
				const (
					maxBytes = 512
					ttl      = time.Hour
					idSpace  = 24
				)
				e := NewEvicting(mkInner(t), EvictConfig{
					MaxBytes: maxBytes,
					TTL:      ttl,
					Now:      clock.Now,
				})
				defer e.Close()
				model := &refModel{maxBytes: maxBytes, ttl: ttl, now: clock.Now}

				for step := 0; step < 400; step++ {
					id := testID(rng.Intn(idSpace))
					switch op := rng.Intn(10); {
					case op < 4: // put
						size := 16 + rng.Intn(112)
						parts := map[string][]byte{"p.bin": make([]byte, size)}
						if _, err := e.Put(id, "schedule", parts); err != nil {
							t.Fatalf("step %d: put: %v", step, err)
						}
						model.put(id, int64(size))
					case op < 8: // get
						_, hit := e.Get(id)
						if want := model.get(id); hit != want {
							t.Fatalf("step %d: get(%s) hit=%v, model says %v", step, id, hit, want)
						}
					case op < 9: // advance the clock, sometimes past the TTL
						clock.Advance(time.Duration(rng.Intn(50)) * time.Minute)
					default:
						e.SweepExpired()
						model.sweep()
					}
					agree(t, step, e, model)
				}
			})
		}
	}
}

// TestEvictingSeedsFromWarmScan verifies that wrapping a reopened disk
// store enforces a (smaller) budget immediately, evicting oldest-first.
func TestEvictingSeedsFromWarmScan(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := d.Put(testID(i), "schedule", map[string][]byte{"p.bin": make([]byte, 100)}); err != nil {
			t.Fatal(err)
		}
		// Created timestamps must be distinct for deterministic ordering.
		time.Sleep(2 * time.Millisecond)
	}

	d, err = OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	var evictedIDs []string
	e := NewEvicting(d, EvictConfig{
		MaxBytes: 250,
		Metrics:  reg,
		OnEvict:  func(ev Eviction) { evictedIDs = append(evictedIDs, ev.ID) },
	})
	defer e.Close()

	if e.Len() != 2 || e.Bytes() != 200 {
		t.Fatalf("budget not enforced at startup: len=%d bytes=%d", e.Len(), e.Bytes())
	}
	if len(evictedIDs) != 2 || evictedIDs[0] != testID(0) || evictedIDs[1] != testID(1) {
		t.Fatalf("expected oldest-first startup eviction of %s,%s; got %v", testID(0), testID(1), evictedIDs)
	}
	if got := reg.CounterValue("server.cache.evictions"); got != 2 {
		t.Fatalf("evictions counter = %d, want 2", got)
	}
	for i := 2; i < 4; i++ {
		if _, ok := e.Get(testID(i)); !ok {
			t.Fatalf("survivor %s not served", testID(i))
		}
	}
}

// TestEvictingTTLNeverServesExpired pins the lazy-expiry contract: an
// entry past its TTL misses on access even before any sweep runs.
func TestEvictingTTLNeverServesExpired(t *testing.T) {
	clock := newFakeClock()
	var evs []Eviction
	e := NewEvicting(NewMemory(nil), EvictConfig{
		TTL:     time.Minute,
		Now:     clock.Now,
		OnEvict: func(ev Eviction) { evs = append(evs, ev) },
	})
	defer e.Close()
	if _, err := e.Put(testID(0), "schedule", map[string][]byte{"p.bin": make([]byte, 10)}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(61 * time.Second)
	if _, ok := e.Get(testID(0)); ok {
		t.Fatal("expired artifact served")
	}
	if len(evs) != 1 || evs[0].Reason != "ttl" {
		t.Fatalf("expected one ttl eviction, got %+v", evs)
	}
	if n := e.SweepExpired(); n != 0 {
		t.Fatalf("sweep found %d entries after lazy eviction, want 0", n)
	}
}

// TestEvictingConcurrency hammers the full production composition —
// Evicting(Tiered(Evicting(Memory), Disk)) — from many goroutines; run
// under -race it is the concurrency smoke for the whole package.
func TestEvictingConcurrency(t *testing.T) {
	front := NewEvicting(NewMemory(nil), EvictConfig{MaxBytes: 2 << 10})
	back, err := OpenDisk(t.TempDir(), DiskOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEvicting(NewTiered(front, back, nil), EvictConfig{
		MaxBytes: 8 << 10,
		TTL:      time.Hour,
		OnEvict:  func(Eviction) {},
	})
	defer e.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				id := testID(rng.Intn(32))
				switch rng.Intn(4) {
				case 0:
					_, _ = e.Put(id, "schedule", map[string][]byte{"p.bin": make([]byte, 64+rng.Intn(256))})
				case 1:
					_, _ = e.Lookup(id)
				case 2:
					if a, ok := e.Get(id); ok {
						_ = a.Part("p.bin")
					}
				default:
					e.List("", 10)
					if i%50 == 0 {
						e.SweepExpired()
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// The index and inner store must agree once the dust settles.
	infos, _ := e.List("", 0)
	if len(infos) != e.Len() {
		t.Fatalf("index holds %d entries, inner store %d", e.Len(), len(infos))
	}
	if e.Bytes() > 8<<10 {
		t.Fatalf("byte budget exceeded after settle: %d", e.Bytes())
	}
}
