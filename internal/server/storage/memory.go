package storage

import (
	"sort"
	"sync"
	"time"

	"wsan/internal/obs"
)

// Memory is the in-memory Store backend: a map of resident artifacts.
// Contents are lost when the process exits; capacity is bounded only by
// RAM (wrap with NewEvicting for a byte budget). Safe for concurrent use.
type Memory struct {
	mu   sync.RWMutex
	arts map[string]*Artifact
	size int64
	mets obs.Sink
}

// NewMemory returns an empty memory store. mets (nil to disable) receives
// the stored/dup_writes counters and the hit/miss counters of Lookup calls
// made directly on this store — pass nil when the store is an internal
// tier of a composed Store.
func NewMemory(mets obs.Sink) *Memory {
	return &Memory{arts: make(map[string]*Artifact), mets: mets}
}

// Lookup implements Store.
func (s *Memory) Lookup(id string) (*Artifact, bool) {
	a, ok := s.Get(id)
	countProbe(s.mets, ok)
	return a, ok
}

// Get implements Store. The returned artifact's part slices are the
// store's resident copies — read-only per the Artifact.Part aliasing rule.
func (s *Memory) Get(id string) (*Artifact, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, ok := s.arts[id]
	return a, ok
}

// Put implements Store. Parts are deep-copied, so the caller's buffers are
// free to be reused afterwards.
func (s *Memory) Put(id, kind string, parts map[string][]byte) (*Artifact, error) {
	s.mu.Lock()
	if a, ok := s.arts[id]; ok {
		s.mu.Unlock()
		if s.mets != nil {
			s.mets.Count("server.cache.dup_writes", 1)
		}
		return a, nil
	}
	a := NewArtifact(id, kind, time.Now(), copyParts(parts))
	s.arts[id] = a
	s.size += a.size
	s.mu.Unlock()
	if s.mets != nil {
		s.mets.Count("server.cache.stored", 1)
	}
	return a, nil
}

// put installs an already-built artifact (tier promotion: the artifact is
// immutable and already store-owned, so no copy and no counters).
func (s *Memory) put(a *Artifact) {
	s.mu.Lock()
	if _, ok := s.arts[a.ID]; !ok {
		s.arts[a.ID] = a
		s.size += a.size
	}
	s.mu.Unlock()
}

// Delete implements Store.
func (s *Memory) Delete(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.arts[id]
	if !ok {
		return false
	}
	delete(s.arts, id)
	s.size -= a.size
	return true
}

// Len implements Store.
func (s *Memory) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.arts)
}

// Bytes implements Store.
func (s *Memory) Bytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.size
}

// List implements Store.
func (s *Memory) List(after string, limit int) ([]Info, string) {
	s.mu.RLock()
	ids := make([]string, 0, len(s.arts))
	for id := range s.arts {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	page, next := pageIDs(ids, after, limit)
	infos := make([]Info, 0, len(page))
	for _, id := range page {
		a := s.arts[id]
		infos = append(infos, Info{ID: a.ID, Kind: a.Kind, Created: a.Created, Parts: a.PartNames(), Bytes: a.size})
	}
	s.mu.RUnlock()
	return infos, next
}

// Close implements Store (releases the map).
func (s *Memory) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.arts = make(map[string]*Artifact)
	s.size = 0
	return nil
}

// countProbe records one Lookup outcome.
func countProbe(mets obs.Sink, hit bool) {
	if mets == nil {
		return
	}
	if hit {
		mets.Count("server.cache.hits", 1)
	} else {
		mets.Count("server.cache.misses", 1)
	}
}
