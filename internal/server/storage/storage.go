// Package storage is the daemon's content-addressed artifact store behind
// a pluggable Store interface. Three backends compose:
//
//   - Memory: the original in-memory map, now size-accounting. Fast, lost
//     on restart.
//   - Disk: one directory per artifact under a store root, parts written
//     via temp-dir + os.Rename so a crash mid-write never leaves a visible
//     artifact, and a startup warm-scan that verifies part digests and
//     quarantines anything truncated or corrupt.
//   - Tiered: memory front, write-through to disk, read-miss promotion —
//     the layout `wsansim serve -store-dir` runs.
//
// An Evicting wrapper adds a byte-budget LRU plus optional TTL over any
// backend; wrapped around a Tiered store the eviction spans both tiers
// (a capacity or TTL eviction deletes the artifact from memory and disk).
//
// Metric ownership is split so composed stores never double-count: the
// store the caller invokes Lookup on counts server.cache.{hits,misses};
// the authoritative (deepest) backend counts server.cache.{stored,
// dup_writes} and — disk only — server.cache.quarantined; the Evicting
// wrapper counts server.cache.evictions and keeps the
// server.cache.{bytes,artifacts} gauges. Internal tiers therefore get a
// nil sink from composition code.
package storage

import (
	"sort"
	"time"
)

// Artifact is one completed job output: a bundle of named JSON documents
// ("parts") under a content address. Artifacts are immutable snapshots —
// once returned from a Store they stay valid even if the entry is
// subsequently evicted or deleted.
type Artifact struct {
	// ID is the content address: the hex SHA-256 of the producing request.
	ID string `json:"id"`
	// Kind names the producing job kind ("schedule", "simulate", ...).
	Kind string `json:"kind"`
	// Created is when the artifact was first stored.
	Created time.Time `json:"created"`
	// parts maps a part name (e.g. "schedule.json") to its bytes.
	parts map[string][]byte
	// size is the total part payload in bytes.
	size int64
}

// NewArtifact assembles an artifact value from loaded parts. The map and
// its slices are owned by the artifact after the call.
func NewArtifact(id, kind string, created time.Time, parts map[string][]byte) *Artifact {
	return &Artifact{ID: id, Kind: kind, Created: created, parts: parts, size: partBytes(parts)}
}

// Part returns the named part's bytes (nil if absent).
//
// Aliasing rule: the returned slice may be shared with the store's own
// retained copy (the memory backend returns its resident slice; the disk
// backend returns bytes freshly read for this Artifact) — callers must
// treat it as read-only. Stores, conversely, must never retain a caller's
// Put input aliased: Put deep-copies, so mutating the map or slices passed
// to Put never corrupts stored data.
func (a *Artifact) Part(name string) []byte { return a.parts[name] }

// PartNames returns the sorted part names.
func (a *Artifact) PartNames() []string {
	names := make([]string, 0, len(a.parts))
	for n := range a.parts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Bytes returns the total part payload size.
func (a *Artifact) Bytes() int64 { return a.size }

// Info describes a stored artifact without its part contents — what the
// paginated List returns and the HTTP artifact index serves.
type Info struct {
	ID      string    `json:"id"`
	Kind    string    `json:"kind"`
	Created time.Time `json:"created"`
	// Parts is the sorted part-name list.
	Parts []string `json:"parts"`
	// Bytes is the total part payload size.
	Bytes int64 `json:"bytes"`
}

// Store is a content-addressed artifact store. Implementations are safe
// for concurrent use.
type Store interface {
	// Lookup is the cache probe a job submission performs: Get plus
	// server.cache.{hits,misses} accounting on the store it is called on.
	Lookup(id string) (*Artifact, bool)
	// Get fetches an artifact without touching the cache counters.
	Get(id string) (*Artifact, bool)
	// Put stores a completed artifact under its ID, deep-copying parts.
	// Storing an ID twice keeps the first copy (content addressing
	// guarantees both hold the same request's output) and returns it.
	Put(id, kind string, parts map[string][]byte) (*Artifact, error)
	// Delete removes an artifact, reporting whether it existed.
	Delete(id string) bool
	// Len returns the number of stored artifacts.
	Len() int
	// Bytes returns the total stored part payload.
	Bytes() int64
	// List pages the stored artifacts sorted by ID. The cursor contract is
	// strictly-greater resume: every returned ID is > after (lexicographic
	// over the hex content addresses), so a cursor naming an artifact that
	// was deleted or evicted between pages still resumes at the right
	// position. limit > 0 caps the page; the second return is the next
	// page's cursor ("" when this page exhausts the listing).
	List(after string, limit int) ([]Info, string)
	// Close releases backend resources. The store is unusable afterwards.
	Close() error
}

// partBytes sums a part map's payload sizes.
func partBytes(parts map[string][]byte) int64 {
	var n int64
	for _, p := range parts {
		n += int64(len(p))
	}
	return n
}

// copyParts deep-copies a part map — Put's defense against callers
// mutating the buffers they handed in.
func copyParts(parts map[string][]byte) map[string][]byte {
	cp := make(map[string][]byte, len(parts))
	for name, p := range parts {
		buf := make([]byte, len(p))
		copy(buf, p)
		cp[name] = buf
	}
	return cp
}

// pageIDs applies the strictly-greater cursor contract to a sorted ID
// slice, returning the page and the next cursor.
func pageIDs(sorted []string, after string, limit int) (page []string, next string) {
	start := 0
	if after != "" {
		start = sort.SearchStrings(sorted, after)
		// SearchStrings finds the first ID >= after; strictly-greater
		// resume skips the cursor itself when it still exists.
		if start < len(sorted) && sorted[start] == after {
			start++
		}
	}
	end := len(sorted)
	if limit > 0 && start+limit < end {
		end = start + limit
	}
	page = sorted[start:end]
	if end < len(sorted) && len(page) > 0 {
		next = page[len(page)-1]
	}
	return page, next
}
