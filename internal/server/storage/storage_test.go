package storage

import (
	"bytes"
	"fmt"
	"testing"

	"wsan/internal/obs"
)

// testID derives a deterministic fake content address (valid hex).
func testID(n int) string { return fmt.Sprintf("%064x", n+1) }

// backends enumerates every Store composition under test with a fresh
// instance per call.
func backends(t *testing.T) map[string]func(t *testing.T) Store {
	t.Helper()
	return map[string]func(t *testing.T) Store{
		"memory": func(t *testing.T) Store { return NewMemory(nil) },
		"disk": func(t *testing.T) Store {
			d, err := OpenDisk(t.TempDir(), DiskOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"tiered": func(t *testing.T) Store {
			d, err := OpenDisk(t.TempDir(), DiskOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return NewTiered(NewMemory(nil), d, nil)
		},
		"evicting": func(t *testing.T) Store {
			return NewEvicting(NewMemory(nil), EvictConfig{MaxBytes: 1 << 30})
		},
	}
}

func TestStoreConformance(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			defer s.Close()

			if _, ok := s.Lookup(testID(0)); ok {
				t.Fatal("empty store should miss")
			}
			parts := map[string][]byte{"a.json": []byte(`{"x":1}`), "b.json": []byte(`[2]`)}
			a, err := s.Put(testID(0), "schedule", parts)
			if err != nil {
				t.Fatal(err)
			}
			if a.ID != testID(0) || a.Kind != "schedule" {
				t.Fatalf("artifact identity: %+v", a)
			}
			if got := a.Bytes(); got != int64(len(parts["a.json"])+len(parts["b.json"])) {
				t.Fatalf("artifact bytes = %d", got)
			}
			got, ok := s.Get(testID(0))
			if !ok {
				t.Fatal("stored artifact should be readable")
			}
			if !bytes.Equal(got.Part("a.json"), parts["a.json"]) || !bytes.Equal(got.Part("b.json"), parts["b.json"]) {
				t.Fatal("part bytes differ after round trip")
			}
			if names := got.PartNames(); len(names) != 2 || names[0] != "a.json" || names[1] != "b.json" {
				t.Fatalf("part names = %v", names)
			}
			if got.Part("missing.json") != nil {
				t.Fatal("absent part should be nil")
			}
			if s.Len() != 1 {
				t.Fatalf("Len = %d, want 1", s.Len())
			}
			if s.Bytes() != a.Bytes() {
				t.Fatalf("Bytes = %d, want %d", s.Bytes(), a.Bytes())
			}

			// Double put keeps the first copy.
			again, err := s.Put(testID(0), "schedule", map[string][]byte{"a.json": []byte(`other`)})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(again.Part("a.json"), parts["a.json"]) {
				t.Fatal("duplicate put must keep the first artifact's bytes")
			}
			if s.Len() != 1 || s.Bytes() != a.Bytes() {
				t.Fatalf("after dup put: len=%d bytes=%d", s.Len(), s.Bytes())
			}

			if !s.Delete(testID(0)) {
				t.Fatal("delete of present artifact should report true")
			}
			if s.Delete(testID(0)) {
				t.Fatal("delete of absent artifact should report false")
			}
			if _, ok := s.Get(testID(0)); ok {
				t.Fatal("deleted artifact should miss")
			}
			if s.Len() != 0 || s.Bytes() != 0 {
				t.Fatalf("after delete: len=%d bytes=%d", s.Len(), s.Bytes())
			}
		})
	}
}

func TestStoreListCursor(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			defer s.Close()
			const n = 6
			for i := 0; i < n; i++ {
				if _, err := s.Put(testID(i), "schedule", map[string][]byte{"p.json": []byte(`{}`)}); err != nil {
					t.Fatal(err)
				}
			}
			// Full listing, no cursor.
			all, next := s.List("", 0)
			if len(all) != n || next != "" {
				t.Fatalf("full list: %d items, next %q", len(all), next)
			}
			for i := 1; i < len(all); i++ {
				if all[i-1].ID >= all[i].ID {
					t.Fatal("listing must be ID-sorted")
				}
			}
			// Page through with limit 2.
			var pages [][]Info
			cursor := ""
			for {
				page, nx := s.List(cursor, 2)
				if len(page) == 0 {
					break
				}
				pages = append(pages, page)
				if nx == "" {
					break
				}
				cursor = nx
			}
			if len(pages) != 3 {
				t.Fatalf("expected 3 pages, got %d", len(pages))
			}
			// Exact-boundary page: the next cursor of the final page is "".
			last, nx := s.List(pages[1][1].ID, 2)
			if len(last) != 2 || nx != "" {
				t.Fatalf("final page: %d items, next %q", len(last), nx)
			}
		})
	}
}

// TestStoreListCursorSurvivesEviction is the regression test for the
// strictly-greater resume contract: an ?after= cursor naming an artifact
// deleted (or evicted) between pages must resume at the right position
// instead of erroring or restarting.
func TestStoreListCursorSurvivesEviction(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			defer s.Close()
			for i := 0; i < 6; i++ {
				if _, err := s.Put(testID(i), "schedule", map[string][]byte{"p.json": []byte(`{}`)}); err != nil {
					t.Fatal(err)
				}
			}
			page1, cursor := s.List("", 3)
			if len(page1) != 3 || cursor != page1[2].ID {
				t.Fatalf("page1: %d items, cursor %q", len(page1), cursor)
			}
			// The cursor artifact is evicted between page fetches.
			if !s.Delete(cursor) {
				t.Fatal("cursor artifact should exist")
			}
			page2, next := s.List(cursor, 3)
			if len(page2) != 3 || next != "" {
				t.Fatalf("page2 after evicted cursor: %d items, next %q", len(page2), next)
			}
			if page2[0].ID != testID(3) {
				t.Fatalf("resume position: got %s, want %s", page2[0].ID, testID(3))
			}
			// Union of both pages covers everything except the evicted one,
			// with no duplicates.
			seen := map[string]bool{}
			for _, info := range append(append([]Info{}, page1...), page2...) {
				if seen[info.ID] {
					t.Fatalf("duplicate %s across pages", info.ID)
				}
				seen[info.ID] = true
			}
			if len(seen) != 6 {
				t.Fatalf("pages cover %d artifacts, want 6", len(seen))
			}
		})
	}
}

// TestPutInputAliasing pins the Put half of the aliasing rule: every
// backend deep-copies, so a caller mutating the buffers it passed in never
// corrupts stored data.
func TestPutInputAliasing(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			defer s.Close()
			buf := []byte(`{"v":1}`)
			parts := map[string][]byte{"p.json": buf}
			if _, err := s.Put(testID(0), "schedule", parts); err != nil {
				t.Fatal(err)
			}
			buf[5] = '9'
			parts["other.json"] = []byte(`x`)
			a, ok := s.Get(testID(0))
			if !ok {
				t.Fatal("artifact missing")
			}
			if !bytes.Equal(a.Part("p.json"), []byte(`{"v":1}`)) {
				t.Fatalf("stored part aliased the caller's buffer: %q", a.Part("p.json"))
			}
			if a.Part("other.json") != nil {
				t.Fatal("stored part map aliased the caller's map")
			}
		})
	}
}

// TestDiskPartCopies pins the Get half for the disk backend: each Get
// reads fresh buffers, so mutating one returned part never leaks into
// another read (the HTTP boundary serves these slices).
func TestDiskPartCopies(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Put(testID(0), "schedule", map[string][]byte{"p.json": []byte(`{"v":1}`)}); err != nil {
		t.Fatal(err)
	}
	first, ok := d.Get(testID(0))
	if !ok {
		t.Fatal("artifact missing")
	}
	first.Part("p.json")[0] = 'X'
	second, ok := d.Get(testID(0))
	if !ok {
		t.Fatal("artifact missing on re-read (mutated copy must not trigger quarantine)")
	}
	if !bytes.Equal(second.Part("p.json"), []byte(`{"v":1}`)) {
		t.Fatal("disk Get returned a shared slice across calls")
	}
}

// TestMemoryPartSharing documents the memory backend's read side of the
// rule: Part returns the resident slice (no copy), which is why callers
// must treat it as read-only.
func TestMemoryPartSharing(t *testing.T) {
	m := NewMemory(nil)
	a, err := m.Put(testID(0), "schedule", map[string][]byte{"p.json": []byte(`{"v":1}`)})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := m.Get(testID(0))
	if &a.Part("p.json")[0] != &b.Part("p.json")[0] {
		t.Fatal("memory backend is expected to share its resident slice across Gets")
	}
}

func TestLookupCounters(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMemory(reg)
	if _, ok := m.Lookup(testID(0)); ok {
		t.Fatal("empty store should miss")
	}
	if _, err := m.Put(testID(0), "schedule", map[string][]byte{"p.json": []byte(`{}`)}); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Lookup(testID(0)); !ok {
		t.Fatal("stored key should hit")
	}
	if got := reg.CounterValue("server.cache.hits"); got != 1 {
		t.Errorf("hits = %d, want 1", got)
	}
	if got := reg.CounterValue("server.cache.misses"); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
	if got := reg.CounterValue("server.cache.stored"); got != 1 {
		t.Errorf("stored = %d, want 1", got)
	}
	// Get must not touch the probe counters.
	if _, ok := m.Get(testID(0)); !ok {
		t.Fatal("Get should find the artifact")
	}
	if got := reg.CounterValue("server.cache.hits"); got != 1 {
		t.Errorf("hits after Get = %d, want 1", got)
	}
	// Duplicate put counts dup_writes, not stored.
	if _, err := m.Put(testID(0), "schedule", map[string][]byte{"p.json": []byte(`{}`)}); err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue("server.cache.dup_writes"); got != 1 {
		t.Errorf("dup_writes = %d, want 1", got)
	}
	if got := reg.CounterValue("server.cache.stored"); got != 1 {
		t.Errorf("stored after dup = %d, want 1", got)
	}
}

// TestTieredPromotion pins the read-miss promotion path: a disk-resident
// artifact read through the tiered store lands in the memory front.
func TestTieredPromotion(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Put(testID(0), "schedule", map[string][]byte{"p.json": []byte(`{"v":1}`)}); err != nil {
		t.Fatal(err)
	}
	d.Close()

	// Reopen: the memory front starts cold.
	d, err = OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemory(nil)
	ts := NewTiered(mem, d, nil)
	defer ts.Close()
	if mem.Len() != 0 {
		t.Fatal("front should start empty")
	}
	a, ok := ts.Get(testID(0))
	if !ok || !bytes.Equal(a.Part("p.json"), []byte(`{"v":1}`)) {
		t.Fatal("tiered read of disk-resident artifact failed")
	}
	if mem.Len() != 1 {
		t.Fatal("read miss should promote into the memory front")
	}
	// Write-through: a fresh put lands in both tiers.
	if _, err := ts.Put(testID(1), "schedule", map[string][]byte{"q.json": []byte(`2`)}); err != nil {
		t.Fatal(err)
	}
	if mem.Len() != 2 || d.Len() != 2 {
		t.Fatalf("write-through: front=%d back=%d, want 2/2", mem.Len(), d.Len())
	}
	// Delete spans both tiers.
	if !ts.Delete(testID(0)) {
		t.Fatal("delete failed")
	}
	if mem.Len() != 1 || d.Len() != 1 {
		t.Fatalf("delete left front=%d back=%d", mem.Len(), d.Len())
	}
}
