package storage

import "wsan/internal/obs"

// Tiered composes a fast front store over a durable back store:
//
//   - Put writes through — the back (durable) tier first, then the front,
//     so an artifact is never front-resident without being durable.
//   - Get probes the front; a miss falls to the back and promotes the
//     artifact into the front so the next read is memory-speed.
//   - Delete, Len, Bytes, and List treat the back tier as authoritative
//     (the front is a cache of it, never a superset).
//
// Bound the front tier's residency by building it as
// NewEvicting(NewMemory(nil), ...): its evictions then drop only the
// memory copy while the artifact stays durable below. Safe for concurrent
// use.
type Tiered struct {
	front Store
	back  Store
	mets  obs.Sink
}

// NewTiered composes front over back. mets (nil to disable) receives the
// hit/miss counters for Lookup calls made on the tiered store; build the
// tiers themselves with nil sinks except the back tier's
// stored/dup_writes/quarantined ownership.
func NewTiered(front, back Store, mets obs.Sink) *Tiered {
	return &Tiered{front: front, back: back, mets: mets}
}

// Lookup implements Store.
func (t *Tiered) Lookup(id string) (*Artifact, bool) {
	a, ok := t.Get(id)
	countProbe(t.mets, ok)
	return a, ok
}

// Get implements Store: front hit, else back read with promotion.
func (t *Tiered) Get(id string) (*Artifact, bool) {
	if a, ok := t.front.Get(id); ok {
		return a, true
	}
	a, ok := t.back.Get(id)
	if !ok {
		return nil, false
	}
	t.promote(a)
	return a, true
}

// promote installs a back-tier artifact into the front. The fast path — a
// *Memory front, or one wrapped by *Evicting — installs the immutable
// artifact without re-copying its parts; any other front re-Puts.
func (t *Tiered) promote(a *Artifact) {
	switch f := t.front.(type) {
	case *Memory:
		f.put(a)
	case *Evicting:
		f.putArtifact(a)
	default:
		_, _ = t.front.Put(a.ID, a.Kind, a.parts)
	}
}

// Put implements Store: write-through, durable tier first.
func (t *Tiered) Put(id, kind string, parts map[string][]byte) (*Artifact, error) {
	a, err := t.back.Put(id, kind, parts)
	if err != nil {
		return nil, err
	}
	t.promote(a)
	return a, nil
}

// Delete implements Store: the artifact leaves both tiers.
func (t *Tiered) Delete(id string) bool {
	inFront := t.front.Delete(id)
	return t.back.Delete(id) || inFront
}

// Len implements Store (the durable tier is authoritative).
func (t *Tiered) Len() int { return t.back.Len() }

// Bytes implements Store (the durable tier is authoritative).
func (t *Tiered) Bytes() int64 { return t.back.Bytes() }

// List implements Store (the durable tier is authoritative).
func (t *Tiered) List(after string, limit int) ([]Info, string) {
	return t.back.List(after, limit)
}

// Close implements Store.
func (t *Tiered) Close() error {
	ferr := t.front.Close()
	if berr := t.back.Close(); berr != nil {
		return berr
	}
	return ferr
}
