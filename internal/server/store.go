package server

import (
	"crypto/sha256"
	"encoding/hex"

	"wsan/internal/server/storage"
)

// Artifact is one completed job output: a bundle of named JSON documents
// ("parts"). The parts mirror the files the wsansim CLI writes — a schedule
// job's survey.json, workload.json, and schedule.json are byte-identical to
// the gen-schedule artifacts — so anything that consumes the CLI's output
// can consume the daemon's. Storage and retrieval live in the
// internal/server/storage package; the daemon composes its backends (see
// Config.StoreDir and friends) behind the storage.Store interface.
type Artifact = storage.Artifact

// ArtifactKey derives the content address of a job request: the hex SHA-256
// over the network identity hash, the job kind, and the canonical
// (defaults-applied) parameter encoding. Seeds live inside the canonical
// parameters, so runs that differ only by seed address different artifacts.
func ArtifactKey(networkHash, kind string, canonicalParams []byte) string {
	h := sha256.New()
	h.Write([]byte(networkHash))
	h.Write([]byte{0})
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(canonicalParams)
	return hex.EncodeToString(h.Sum(nil))
}

// defaultStoreMemBytes bounds the memory front tier of a disk-backed store
// when Config.StoreMemBytes is unset.
const defaultStoreMemBytes = 256 << 20

// buildStore assembles the daemon's artifact store from the Config:
//
//   - no StoreDir: a process-lifetime memory backend;
//   - StoreDir set: a tiered store — byte-bounded memory front over the
//     durable disk backend (warm-scanned at open, so a restarted daemon
//     serves its previous artifacts without recomputing).
//
// Either way the result is wrapped in an Evicting store enforcing
// StoreMaxBytes/StoreTTL and owning the server.cache.{bytes,artifacts}
// gauges and eviction accounting; onEvict receives every eviction (the
// daemon forwards them to the event bus).
func buildStore(cfg Config, onEvict func(storage.Eviction)) (*storage.Evicting, error) {
	var base storage.Store
	if cfg.StoreDir == "" {
		// The authoritative backend owns stored/dup_writes and, as the
		// store Lookup is called on, the hit/miss probe counters.
		base = storage.NewMemory(cfg.Metrics)
	} else {
		disk, err := storage.OpenDisk(cfg.StoreDir, storage.DiskOptions{Metrics: cfg.Metrics})
		if err != nil {
			return nil, err
		}
		memBytes := cfg.StoreMemBytes
		if memBytes <= 0 {
			memBytes = defaultStoreMemBytes
		}
		// The front tier trims itself with a nil sink: dropping a memory
		// copy of a still-durable artifact is not a cache eviction.
		front := storage.NewEvicting(storage.NewMemory(nil), storage.EvictConfig{MaxBytes: memBytes})
		// Probe counting happens on the outer Evicting wrapper (the store
		// Lookup is called on); the tier composition itself needs no sink.
		base = storage.NewTiered(front, disk, nil)
	}
	return storage.NewEvicting(base, storage.EvictConfig{
		MaxBytes: cfg.StoreMaxBytes,
		TTL:      cfg.StoreTTL,
		Metrics:  cfg.Metrics,
		OnEvict:  onEvict,
	}), nil
}
