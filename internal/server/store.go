package server

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"sync"
	"time"

	"wsan/internal/obs"
)

// Artifact is one completed job output: a bundle of named JSON documents
// ("parts"). The parts mirror the files the wsansim CLI writes — a schedule
// job's survey.json, workload.json, and schedule.json are byte-identical to
// the gen-schedule artifacts — so anything that consumes the CLI's output
// can consume the daemon's.
type Artifact struct {
	// ID is the content address: the hex SHA-256 of the producing request
	// (network identity, job kind, canonical parameters, seed). Two
	// identical requests share one ID, which is what makes resubmissions
	// cache hits.
	ID string `json:"id"`
	// Kind names the producing job kind ("schedule", "simulate", ...).
	Kind string `json:"kind"`
	// Created is when the artifact was stored.
	Created time.Time `json:"created"`
	// parts maps a part name (e.g. "schedule.json") to its exact bytes.
	parts map[string][]byte
}

// Part returns the named part's bytes (nil if absent). The returned slice
// is shared; callers must not mutate it.
func (a *Artifact) Part(name string) []byte { return a.parts[name] }

// PartNames returns the sorted part names.
func (a *Artifact) PartNames() []string {
	names := make([]string, 0, len(a.parts))
	for n := range a.parts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ArtifactKey derives the content address of a job request: the hex SHA-256
// over the network identity hash, the job kind, and the canonical
// (defaults-applied) parameter encoding. Seeds live inside the canonical
// parameters, so runs that differ only by seed address different artifacts.
func ArtifactKey(networkHash, kind string, canonicalParams []byte) string {
	h := sha256.New()
	h.Write([]byte(networkHash))
	h.Write([]byte{0})
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(canonicalParams)
	return hex.EncodeToString(h.Sum(nil))
}

// Store is the in-memory content-addressed artifact store. It is safe for
// concurrent use.
type Store struct {
	mu   sync.RWMutex
	arts map[string]*Artifact
	mets obs.Sink
}

// NewStore returns an empty store reporting cache traffic to mets (nil
// disables the metrics).
func NewStore(mets obs.Sink) *Store {
	return &Store{arts: make(map[string]*Artifact), mets: mets}
}

// Lookup checks whether the artifact for a request key already exists — the
// cache probe a job submission performs. It counts server.cache.{hits,misses}.
func (s *Store) Lookup(id string) (*Artifact, bool) {
	s.mu.RLock()
	a, ok := s.arts[id]
	s.mu.RUnlock()
	if ok {
		if s.mets != nil {
			s.mets.Count("server.cache.hits", 1)
		}
		return a, true
	}
	if s.mets != nil {
		s.mets.Count("server.cache.misses", 1)
	}
	return nil, false
}

// Get fetches an artifact without touching the cache counters (the
// /artifacts endpoints use it).
func (s *Store) Get(id string) (*Artifact, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, ok := s.arts[id]
	return a, ok
}

// Put stores a completed artifact under its ID. Storing an ID twice (two
// racing identical submissions, or a retried job recomputing output a prior
// attempt already stored) keeps the first copy: content addressing
// guarantees both hold the same request's output. Duplicate writes count
// server.cache.dup_writes — a nonzero value means some job recomputed work
// whose artifact already existed, which the runJob idempotency probe is
// supposed to prevent.
func (s *Store) Put(id, kind string, parts map[string][]byte) *Artifact {
	s.mu.Lock()
	defer s.mu.Unlock()
	if a, ok := s.arts[id]; ok {
		if s.mets != nil {
			s.mets.Count("server.cache.dup_writes", 1)
		}
		return a
	}
	a := &Artifact{ID: id, Kind: kind, Created: time.Now(), parts: parts}
	s.arts[id] = a
	if s.mets != nil {
		s.mets.Count("server.cache.stored", 1)
		s.mets.Gauge("server.cache.artifacts", float64(len(s.arts)))
	}
	return a
}

// Len returns the number of stored artifacts.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.arts)
}
