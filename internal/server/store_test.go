package server

import (
	"bytes"
	"testing"

	"wsan"
	"wsan/internal/server/storage"
)

func TestArtifactKeyDeterminism(t *testing.T) {
	a := ArtifactKey("net1", KindSchedule, []byte(`{"flows":5,"seed":1}`))
	b := ArtifactKey("net1", KindSchedule, []byte(`{"flows":5,"seed":1}`))
	if a != b {
		t.Fatal("identical requests must share a key")
	}
	variants := []string{
		ArtifactKey("net2", KindSchedule, []byte(`{"flows":5,"seed":1}`)),
		ArtifactKey("net1", KindSimulate, []byte(`{"flows":5,"seed":1}`)),
		ArtifactKey("net1", KindSchedule, []byte(`{"flows":5,"seed":2}`)),
	}
	for i, v := range variants {
		if v == a {
			t.Errorf("variant %d collides with the base key", i)
		}
	}
}

// testStore is the memory backend behind the Store interface — the
// configuration a daemon without -store-dir runs.
func testStore(t *testing.T) storage.Store {
	t.Helper()
	return storage.NewMemory(nil)
}

func mustPut(t *testing.T, s storage.Store, id, kind string, parts map[string][]byte) *Artifact {
	t.Helper()
	a, err := s.Put(id, kind, parts)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestTopologyRoundTripUnderStore pins the property the HTTP artifact
// surface depends on: testbed JSON stored as an artifact part decodes back
// to a testbed that re-encodes to the identical bytes.
func TestTopologyRoundTripUnderStore(t *testing.T) {
	tb := testTestbed(t)
	var buf bytes.Buffer
	if err := wsan.SaveTestbed(tb, &buf); err != nil {
		t.Fatal(err)
	}
	s := testStore(t)
	mustPut(t, s, "6b", KindSchedule, map[string][]byte{"survey.json": buf.Bytes()})
	a, ok := s.Get("6b")
	if !ok {
		t.Fatal("artifact missing")
	}
	decoded, err := wsan.LoadTestbed(bytes.NewReader(a.Part("survey.json")))
	if err != nil {
		t.Fatalf("stored survey does not decode: %v", err)
	}
	var again bytes.Buffer
	if err := wsan.SaveTestbed(decoded, &again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("testbed JSON is not a byte-stable round trip through the store")
	}
}

// TestScheduleRoundTripUnderStore does the same for workload and schedule
// parts: decode from the store, re-encode, compare bytes.
func TestScheduleRoundTripUnderStore(t *testing.T) {
	tb := testTestbed(t)
	net, err := wsan.NewNetwork(tb, 4)
	if err != nil {
		t.Fatal(err)
	}
	flows, err := net.GenerateWorkload(wsan.WorkloadConfig{
		NumFlows: 5, MaxPeriodExp: 1, Traffic: wsan.PeerToPeer, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Schedule(flows, wsan.RC, wsan.ScheduleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var workload, sched bytes.Buffer
	if err := wsan.SaveWorkload(flows, &workload); err != nil {
		t.Fatal(err)
	}
	if err := wsan.SaveSchedule(res, &sched); err != nil {
		t.Fatal(err)
	}
	s := testStore(t)
	mustPut(t, s, "6b", KindSchedule, map[string][]byte{
		"workload.json": workload.Bytes(),
		"schedule.json": sched.Bytes(),
	})
	a, _ := s.Get("6b")

	gotFlows, err := wsan.LoadWorkload(bytes.NewReader(a.Part("workload.json")))
	if err != nil {
		t.Fatalf("stored workload does not decode: %v", err)
	}
	var workloadAgain bytes.Buffer
	if err := wsan.SaveWorkload(gotFlows, &workloadAgain); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(workload.Bytes(), workloadAgain.Bytes()) {
		t.Fatal("workload JSON is not a byte-stable round trip through the store")
	}

	gotSched, err := wsan.LoadSchedule(bytes.NewReader(a.Part("schedule.json")))
	if err != nil {
		t.Fatalf("stored schedule does not decode: %v", err)
	}
	var schedAgain bytes.Buffer
	if err := wsan.SaveSchedule(gotSched, &schedAgain); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sched.Bytes(), schedAgain.Bytes()) {
		t.Fatal("schedule JSON is not a byte-stable round trip through the store")
	}
	// The decoded schedule must also be semantically identical: an empty
	// dissemination delta against the original.
	delta, err := wsan.DiffSchedules(res, gotSched)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) != 0 {
		t.Fatalf("round-tripped schedule differs by %d delta entries", len(delta))
	}
}
