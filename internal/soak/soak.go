// Package soak is the sustained-churn harness: it drives a randomized but
// fully seeded stream of add / remove / reroute / re-budget deltas — plus
// periodic node-fault batches that reroute every flow crossing a failed
// relay in one atomic operation — against a large live schedule, and checks
// the incremental scheduler's work against an independent replay oracle.
//
// The harness answers two questions the per-operation unit tests cannot:
//
//   - Throughput: how many deltas per second does the repair ladder sustain
//     at steady state on a 500-flow grid, and what do the apply-latency
//     percentiles and fallback rates look like under a realistic mix?
//   - Drift: after thousands of journaled mutations, rollbacks, evictions,
//     and full-reschedule repairs — with recycled arenas and pooled scratch
//     grids underneath — is the live schedule still byte-identical to what a
//     fresh grid fed the same applied operations produces, and does it still
//     satisfy every conflict and reuse-distance constraint?
//
// Every applied operation is logged; at OracleEvery-operation checkpoints
// the oracle grid replays the pending log suffix through the same delta
// APIs and the two schedules' canonical digests must match exactly. Any
// divergence — a stale index, a leaked arena cell, a journal that rolled
// back incompletely — fails the run. Progress and counters are emitted
// under the "sched.churn." metric prefix.
package soak

import (
	"context"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"wsan/internal/flow"
	"wsan/internal/graph"
	"wsan/internal/obs"
	"wsan/internal/routing"
	"wsan/internal/schedule"
	"wsan/internal/scheduler"
	"wsan/internal/topology"
)

// RhoT is the minimum channel-reuse hop distance the harness schedules
// with, matching the evaluation's operating point.
const RhoT = 2

// Config parameterizes one soak run. The zero value is not runnable; use
// DefaultConfig as the starting point.
type Config struct {
	// Flows is the steady-state active-flow target. The candidate pool is
	// twice this size, so adds always have somewhere to draw from.
	Flows int
	// Channels is the channel count (schedule offsets).
	Channels int
	// Ops is the number of churn operations to drive after warmup. A
	// node-fault batch counts as one operation but applies up to BatchSize
	// deltas.
	Ops int
	// Seed derives the workload, the operation stream, and every routing
	// decision; two runs with equal Config produce identical results.
	Seed int64
	// TopoSeed generates the testbed (default 1, the evaluation topology).
	TopoSeed int64
	// Testbed, when non-nil, is the surveyed topology to churn instead of
	// generating the Indriya evaluation testbed from TopoSeed — this is how
	// the daemon soaks a hosted network's own topology. Link selection uses
	// the evaluation PRR threshold (0.9) either way.
	Testbed *topology.Testbed
	// MinPeriodExp and MaxPeriodExp bound the pool's harmonic period range
	// P = [2^min, 2^max] seconds.
	MinPeriodExp int
	MaxPeriodExp int
	// BatchEvery injects a node-fault batch every BatchEvery operations
	// (0 disables batching).
	BatchEvery int
	// BatchSize caps the number of reroutes one node-fault batch carries.
	BatchSize int
	// OracleEvery checks the replay oracle every OracleEvery applied
	// deltas (0 = final check only).
	OracleEvery int
	// ProgressEvery invokes OnProgress every ProgressEvery operations
	// (0 disables intermediate progress).
	ProgressEvery int
	// Metrics receives "sched.churn.*" counters; may be nil.
	Metrics obs.Sink
	// OnProgress, when non-nil, receives live throughput snapshots.
	OnProgress func(Progress)
}

// DefaultConfig is the 500-flow operating point on the Indriya testbed.
func DefaultConfig() Config {
	return Config{
		Flows:        500,
		Channels:     8,
		Ops:          5_000,
		Seed:         1,
		TopoSeed:     1,
		MinPeriodExp: 2,
		MaxPeriodExp: 4,
		BatchEvery:   50,
		BatchSize:    8,
		OracleEvery:  1_000,
	}
}

// Progress is a live snapshot of a running soak.
type Progress struct {
	Ops          int           `json:"ops"`
	Applied      int           `json:"applied"`
	Infeasible   int           `json:"infeasible"`
	Skipped      int           `json:"skipped"`
	ActiveFlows  int           `json:"activeFlows"`
	DeltasPerSec float64       `json:"deltasPerSec"`
	P99          time.Duration `json:"p99Ns"`
	FallbackRate float64       `json:"fallbackRate"`
	Elapsed      time.Duration `json:"elapsedNs"`
}

// Result reports one completed soak run. All duration fields are
// nanoseconds on the wire.
type Result struct {
	Flows      int `json:"flows"`
	Channels   int `json:"channels"`
	Nodes      int `json:"nodes"`
	HyperSlots int `json:"hyperSlots"`

	// WarmupAdmitted/WarmupFailed count the initial admission deltas that
	// build the steady-state workload (excluded from throughput figures).
	WarmupAdmitted int `json:"warmupAdmitted"`
	WarmupFailed   int `json:"warmupFailed"`

	// Ops counts churn operations driven; Applied counts individual deltas
	// that committed (a batch contributes each of its deltas). Infeasible
	// operations were rolled back by the repair ladder's bottom; Skipped
	// operations had no legal move (no detour exists, nothing to remove).
	Ops        int `json:"ops"`
	Applied    int `json:"applied"`
	Infeasible int `json:"infeasible"`
	Skipped    int `json:"skipped"`
	Batches    int `json:"batches"`

	Adds      int `json:"adds"`
	Removes   int `json:"removes"`
	Reroutes  int `json:"reroutes"`
	Rebudgets int `json:"rebudgets"`

	// FallbackEvict/FallbackCascade/FallbackFull count applied deltas that
	// needed the deeper repair-ladder rungs.
	FallbackEvict   int `json:"fallbackEvict"`
	FallbackCascade int `json:"fallbackCascade"`
	FallbackFull    int `json:"fallbackFull"`

	ActiveFlows int `json:"activeFlows"`
	PlacedTx    int `json:"placedTx"`

	// DeltasPerSec is Applied divided by the churn phase's wall time.
	DeltasPerSec float64 `json:"deltasPerSec"`
	// Apply-latency percentiles over applied operations (batches measured
	// whole), in nanoseconds.
	P50 time.Duration `json:"p50Ns"`
	P95 time.Duration `json:"p95Ns"`
	P99 time.Duration `json:"p99Ns"`
	Max time.Duration `json:"maxNs"`

	// OracleChecks counts replay-oracle checkpoints passed (the final
	// check included). A failed check aborts the run with an error.
	OracleChecks int `json:"oracleChecks"`
	// Digest is the canonical digest of the final schedule; with equal
	// Config it is identical across runs and machines.
	Digest string `json:"digest"`

	// HeapStartBytes/HeapEndBytes are live-heap samples (after GC) at the
	// start and end of the churn phase: with recyclable arenas the delta
	// should stay near zero however long the soak runs.
	HeapStartBytes uint64 `json:"heapStartBytes"`
	HeapEndBytes   uint64 `json:"heapEndBytes"`

	Elapsed time.Duration `json:"elapsedNs"`
}

// opKind enumerates the logged operations the oracle replays.
type opKind int

const (
	opAdd opKind = iota
	opRemove
	opReroute
	opRebudget
	opBatch
)

// logOp is one applied operation, captured with deep copies so the oracle
// replay sees exactly what the live grid saw.
type logOp struct {
	kind   opKind
	id     int
	f      *flow.Flow  // opAdd: the admitted flow as placed
	route  []flow.Link // opReroute
	budget []int       // opRebudget
	batch  []scheduler.BatchOp
}

// state is the mutable harness state shared by the generator, the live
// applier, and the oracle.
type state struct {
	cfg  Config
	rng  *rand.Rand
	gc   *graph.Graph
	hop  *graph.HopMatrix
	pcfg scheduler.Config

	sched    *schedule.Schedule
	active   []*flow.Flow // sorted by ID (priority order)
	inactive []*flow.Flow

	log     []logOp // applied operations pending oracle replay
	oSched  *schedule.Schedule
	oActive []*flow.Flow

	durs []time.Duration
	res  *Result
}

// Run executes one soak. It returns an error on any oracle divergence,
// schedule-validation failure, or internal scheduler error; an infeasible
// delta is an expected outcome, not an error. ctx cancellation stops the
// run between operations and surfaces ctx.Err().
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Flows <= 0 || cfg.Channels <= 0 || cfg.Ops < 0 {
		return nil, fmt.Errorf("soak: flows %d, channels %d, and ops %d must be positive", cfg.Flows, cfg.Channels, cfg.Ops)
	}
	if cfg.TopoSeed == 0 {
		cfg.TopoSeed = 1
	}
	if cfg.MinPeriodExp == 0 && cfg.MaxPeriodExp == 0 {
		cfg.MinPeriodExp, cfg.MaxPeriodExp = 2, 4
	}
	if cfg.BatchEvery > 0 && cfg.BatchSize <= 0 {
		cfg.BatchSize = 8
	}
	s, err := newState(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.warmup(ctx); err != nil {
		return nil, err
	}

	runtime.GC()
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	s.res.HeapStartBytes = mem.HeapAlloc

	start := time.Now()
	sinceOracle := 0
	for op := 0; op < cfg.Ops; op++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		applied, err := s.step(op)
		if err != nil {
			return nil, err
		}
		s.res.Ops++
		sinceOracle += applied
		if cfg.OracleEvery > 0 && sinceOracle >= cfg.OracleEvery {
			if err := s.oracleCheck(); err != nil {
				return nil, err
			}
			sinceOracle = 0
		}
		if cfg.ProgressEvery > 0 && (op+1)%cfg.ProgressEvery == 0 {
			s.progress(time.Since(start))
		}
	}
	s.res.Elapsed = time.Since(start)
	if err := s.oracleCheck(); err != nil {
		return nil, err
	}

	runtime.GC()
	runtime.ReadMemStats(&mem)
	s.res.HeapEndBytes = mem.HeapAlloc

	s.finish()
	return s.res, nil
}

// newState builds the testbed, the candidate flow pool (2× the active
// target, routed peer-to-peer), and the empty live and oracle grids.
func newState(cfg Config) (*state, error) {
	tb := cfg.Testbed
	if tb == nil {
		var err error
		tb, err = topology.Indriya(cfg.TopoSeed)
		if err != nil {
			return nil, fmt.Errorf("soak: %w", err)
		}
	}
	chs := topology.Channels(cfg.Channels)
	gc, err := tb.CommGraph(chs, 0.9)
	if err != nil {
		return nil, fmt.Errorf("soak: %w", err)
	}
	gr, err := tb.ReuseGraph(chs)
	if err != nil {
		return nil, fmt.Errorf("soak: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pool, err := flow.Generate(rng, gc, flow.GenConfig{
		NumFlows:     2 * cfg.Flows,
		MinPeriodExp: cfg.MinPeriodExp,
		MaxPeriodExp: cfg.MaxPeriodExp,
	})
	if err != nil {
		return nil, fmt.Errorf("soak: %w", err)
	}
	if err := routing.Assign(pool, gc, routing.Config{Traffic: routing.PeerToPeer}); err != nil {
		return nil, fmt.Errorf("soak: %w", err)
	}
	hyper, err := flow.Hyperperiod(pool)
	if err != nil {
		return nil, fmt.Errorf("soak: %w", err)
	}
	sched, err := schedule.New(hyper, cfg.Channels, gc.Len())
	if err != nil {
		return nil, fmt.Errorf("soak: %w", err)
	}
	oSched, err := schedule.New(hyper, cfg.Channels, gc.Len())
	if err != nil {
		return nil, fmt.Errorf("soak: %w", err)
	}
	return &state{
		cfg: cfg,
		rng: rng,
		gc:  gc,
		hop: gr.AllPairsHop(),
		pcfg: scheduler.Config{
			Algorithm:   scheduler.RC,
			NumChannels: cfg.Channels,
			RhoT:        RhoT,
			HopGR:       gr.AllPairsHop(),
			Metrics:     cfg.Metrics,
		},
		sched:    sched,
		oSched:   oSched,
		inactive: pool,
		res: &Result{
			Flows:      cfg.Flows,
			Channels:   cfg.Channels,
			Nodes:      gc.Len(),
			HyperSlots: hyper,
		},
	}, nil
}

// warmup admits the first Flows pool flows (in priority order) through the
// same delta path the churn loop uses; failures leave the flow in the pool.
func (s *state) warmup(ctx context.Context) error {
	n := s.cfg.Flows
	if n > len(s.inactive) {
		n = len(s.inactive)
	}
	cands := s.inactive[:n]
	s.inactive = append([]*flow.Flow(nil), s.inactive[n:]...)
	for _, f := range cands {
		if err := ctx.Err(); err != nil {
			return err
		}
		res, err := scheduler.AddFlowDelta(s.sched, s.active, f, s.pcfg)
		if err != nil {
			return fmt.Errorf("soak warmup: %w", err)
		}
		if !res.Schedulable {
			s.res.WarmupFailed++
			s.inactive = append(s.inactive, f)
			continue
		}
		s.res.WarmupAdmitted++
		s.insertActive(f)
		s.log = append(s.log, logOp{kind: opAdd, id: f.ID, f: cloneFlow(f)})
	}
	return nil
}

// step generates and applies one churn operation, returning how many deltas
// committed.
func (s *state) step(op int) (int, error) {
	if s.cfg.BatchEvery > 0 && (op+1)%s.cfg.BatchEvery == 0 {
		return s.stepBatch()
	}
	// The mix self-balances around the active-flow target: below it adds
	// dominate, above it removals do.
	addCut := 40
	if len(s.active) >= s.cfg.Flows {
		addCut = 15
	}
	const removeCut = 55 // adds + removes always take 55% combined
	r := s.rng.Intn(100)
	switch {
	case r < addCut && len(s.inactive) > 0:
		return s.stepAdd()
	case r < removeCut && len(s.active) > 1:
		return s.stepRemove()
	case r < 85 && len(s.active) > 0:
		return s.stepReroute()
	case len(s.active) > 0:
		return s.stepRebudget()
	default:
		s.res.Skipped++
		return 0, nil
	}
}

func (s *state) stepAdd() (int, error) {
	i := s.rng.Intn(len(s.inactive))
	f := s.inactive[i]
	start := time.Now()
	res, err := scheduler.AddFlowDelta(s.sched, s.active, f, s.pcfg)
	if err != nil {
		return 0, fmt.Errorf("soak add flow %d: %w", f.ID, err)
	}
	s.res.Adds++
	if !res.Schedulable {
		s.res.Infeasible++
		return 0, nil
	}
	s.inactive = append(s.inactive[:i], s.inactive[i+1:]...)
	s.insertActive(f)
	s.applied(res.Fallback, time.Since(start), 1)
	s.log = append(s.log, logOp{kind: opAdd, id: f.ID, f: cloneFlow(f)})
	return 1, nil
}

func (s *state) stepRemove() (int, error) {
	i := s.rng.Intn(len(s.active))
	f := s.active[i]
	start := time.Now()
	if _, err := scheduler.RemoveFlowDelta(s.sched, f.ID, s.cfg.Metrics); err != nil {
		return 0, fmt.Errorf("soak remove flow %d: %w", f.ID, err)
	}
	s.res.Removes++
	s.active = append(s.active[:i], s.active[i+1:]...)
	s.inactive = append(s.inactive, f)
	s.applied(scheduler.FallbackNone, time.Since(start), 1)
	s.log = append(s.log, logOp{kind: opRemove, id: f.ID})
	return 1, nil
}

// stepReroute is the single-flow fault model: a random relay on the flow's
// route fails and the flow must detour around it.
func (s *state) stepReroute() (int, error) {
	f := s.active[s.rng.Intn(len(s.active))]
	if len(f.Route) < 2 {
		s.res.Skipped++
		return 0, nil // no relay to fail
	}
	avoid := f.Route[s.rng.Intn(len(f.Route)-1)].To
	detour := s.pathAvoiding(f.Src, f.Dst, avoid)
	if detour == nil || sameRoute(detour, f.Route) {
		s.res.Skipped++
		return 0, nil
	}
	start := time.Now()
	res, err := scheduler.RerouteFlowDelta(s.sched, s.active, f.ID, detour, s.pcfg)
	if err != nil {
		return 0, fmt.Errorf("soak reroute flow %d: %w", f.ID, err)
	}
	s.res.Reroutes++
	if !res.Schedulable {
		s.res.Infeasible++
		return 0, nil
	}
	f.Route = append([]flow.Link(nil), detour...)
	f.TxBudget = flow.AdaptBudget(f.TxBudget, len(detour))
	s.applied(res.Fallback, time.Since(start), 1)
	s.log = append(s.log, logOp{kind: opReroute, id: f.ID, route: append([]flow.Link(nil), detour...)})
	return 1, nil
}

// stepRebudget toggles a flow's retransmission budget — installing a random
// per-hop budget where none is set, clearing it otherwise — and re-places
// the flow on its own route, exactly the manage loop's re-budgeting motion.
func (s *state) stepRebudget() (int, error) {
	f := s.active[s.rng.Intn(len(s.active))]
	var budget []int
	if len(f.TxBudget) == 0 {
		budget = make([]int, len(f.Route))
		for h := range budget {
			budget[h] = 1 + s.rng.Intn(2)
		}
	}
	old := f.TxBudget
	f.TxBudget = budget
	start := time.Now()
	res, err := scheduler.RerouteFlowDelta(s.sched, s.active, f.ID, f.Route, s.pcfg)
	if err != nil {
		f.TxBudget = old
		return 0, fmt.Errorf("soak rebudget flow %d: %w", f.ID, err)
	}
	s.res.Rebudgets++
	if !res.Schedulable {
		f.TxBudget = old
		s.res.Infeasible++
		return 0, nil
	}
	s.applied(res.Fallback, time.Since(start), 1)
	s.log = append(s.log, logOp{kind: opRebudget, id: f.ID, budget: append([]int(nil), budget...)})
	return 1, nil
}

// stepBatch is the node-fault model: a random relay crashes and every
// active flow crossing it (capped at BatchSize, endpoints excluded — those
// flows cannot be saved) detours around it in one atomic batch.
func (s *state) stepBatch() (int, error) {
	node := s.rng.Intn(s.gc.Len())
	var ops []scheduler.BatchOp
	for _, f := range s.active {
		if len(ops) >= s.cfg.BatchSize {
			break
		}
		if f.Src == node || f.Dst == node || !crossesNode(f.Route, node) {
			continue
		}
		detour := s.pathAvoiding(f.Src, f.Dst, node)
		if detour == nil {
			continue
		}
		ops = append(ops, scheduler.BatchOp{
			Kind:   scheduler.BatchReroute,
			FlowID: f.ID,
			Route:  detour,
		})
	}
	if len(ops) == 0 {
		s.res.Skipped++
		return 0, nil
	}
	start := time.Now()
	res, err := scheduler.ApplyDeltaBatch(s.sched, s.active, ops, s.pcfg)
	if err != nil {
		return 0, fmt.Errorf("soak fault batch (node %d): %w", node, err)
	}
	s.res.Batches++
	s.res.Reroutes += len(ops)
	if !res.Schedulable {
		s.res.Infeasible++
		return 0, nil
	}
	s.active = res.Flows
	for _, fb := range res.Fallbacks {
		s.countFallback(fb)
	}
	s.durs = append(s.durs, time.Since(start))
	s.res.Applied += len(ops)
	s.log = append(s.log, logOp{kind: opBatch, batch: cloneBatch(ops)})
	return len(ops), nil
}

// applied records one committed unit delta.
func (s *state) applied(fb scheduler.Fallback, d time.Duration, n int) {
	s.countFallback(fb)
	s.durs = append(s.durs, d)
	s.res.Applied += n
}

func (s *state) countFallback(fb scheduler.Fallback) {
	switch fb {
	case scheduler.FallbackEvict:
		s.res.FallbackEvict++
	case scheduler.FallbackCascade:
		s.res.FallbackCascade++
	case scheduler.FallbackFull:
		s.res.FallbackFull++
	}
}

// insertActive keeps the active workload sorted by ID (priority order).
func (s *state) insertActive(f *flow.Flow) {
	i := sort.Search(len(s.active), func(i int) bool { return s.active[i].ID >= f.ID })
	s.active = append(s.active, nil)
	copy(s.active[i+1:], s.active[i:])
	s.active[i] = f
}

// pathAvoiding returns the shortest src→dst hop path in the communication
// graph with node avoid deleted, as a route, or nil when none exists.
func (s *state) pathAvoiding(src, dst, avoid int) []flow.Link {
	g := graph.New(s.gc.Len())
	for u := 0; u < s.gc.Len(); u++ {
		if u == avoid {
			continue
		}
		for _, v := range s.gc.Neighbors(u) {
			if int(v) == avoid {
				continue
			}
			// Edges of a valid graph re-add cleanly.
			_ = g.AddEdge(u, int(v))
		}
	}
	path := g.ShortestPathHop(src, dst)
	if path == nil {
		return nil
	}
	route := make([]flow.Link, len(path)-1)
	for i := range route {
		route[i] = flow.Link{From: path[i], To: path[i+1]}
	}
	return route
}

// oracleCheck replays the pending log suffix into the oracle grid through
// the same delta APIs (metrics detached) and requires the two schedules'
// canonical digests to match exactly, then validates the live schedule's
// conflict and reuse-distance invariants.
func (s *state) oracleCheck() error {
	ocfg := s.pcfg
	ocfg.Metrics = nil
	for i, op := range s.log {
		var err error
		switch op.kind {
		case opAdd:
			f := cloneFlow(op.f)
			var res *scheduler.DeltaResult
			res, err = scheduler.AddFlowDelta(s.oSched, s.oActive, f, ocfg)
			if err == nil && !res.Schedulable {
				err = fmt.Errorf("oracle found add of flow %d infeasible", f.ID)
			}
			if err == nil {
				j := sort.Search(len(s.oActive), func(j int) bool { return s.oActive[j].ID >= f.ID })
				s.oActive = append(s.oActive, nil)
				copy(s.oActive[j+1:], s.oActive[j:])
				s.oActive[j] = f
			}
		case opRemove:
			_, err = scheduler.RemoveFlowDelta(s.oSched, op.id, nil)
			if err == nil {
				for j, g := range s.oActive {
					if g.ID == op.id {
						s.oActive = append(s.oActive[:j], s.oActive[j+1:]...)
						break
					}
				}
			}
		case opReroute:
			var res *scheduler.DeltaResult
			res, err = scheduler.RerouteFlowDelta(s.oSched, s.oActive, op.id, op.route, ocfg)
			if err == nil && !res.Schedulable {
				err = fmt.Errorf("oracle found reroute of flow %d infeasible", op.id)
			}
			if err == nil {
				g := s.oracleFlow(op.id)
				g.Route = append([]flow.Link(nil), op.route...)
				g.TxBudget = flow.AdaptBudget(g.TxBudget, len(op.route))
			}
		case opRebudget:
			g := s.oracleFlow(op.id)
			g.TxBudget = append([]int(nil), op.budget...)
			var res *scheduler.DeltaResult
			res, err = scheduler.RerouteFlowDelta(s.oSched, s.oActive, op.id, g.Route, ocfg)
			if err == nil && !res.Schedulable {
				err = fmt.Errorf("oracle found rebudget of flow %d infeasible", op.id)
			}
		case opBatch:
			var res *scheduler.BatchResult
			res, err = scheduler.ApplyDeltaBatch(s.oSched, s.oActive, op.batch, ocfg)
			if err == nil && !res.Schedulable {
				err = fmt.Errorf("oracle found fault batch infeasible (flow %d)", res.FailedFlow)
			}
			if err == nil {
				s.oActive = res.Flows
			}
		}
		if err != nil {
			return fmt.Errorf("soak oracle: replaying op %d/%d: %w", i+1, len(s.log), err)
		}
	}
	s.log = s.log[:0]
	live, oracle := Digest(s.sched), Digest(s.oSched)
	if live != oracle {
		return fmt.Errorf("soak oracle: schedule drift after %d applied deltas: live %s, oracle replay %s",
			s.res.Applied, live, oracle)
	}
	if err := s.sched.Validate(s.pcfg.HopGR, RhoT); err != nil {
		return fmt.Errorf("soak oracle: live schedule invalid: %w", err)
	}
	s.res.OracleChecks++
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Count("sched.churn.oracle_checks", 1)
	}
	return nil
}

// oracleFlow finds the oracle's record of a flow; replay order guarantees
// it exists.
func (s *state) oracleFlow(id int) *flow.Flow {
	for _, g := range s.oActive {
		if g.ID == id {
			return g
		}
	}
	panic(fmt.Sprintf("soak oracle: flow %d not active", id))
}

// progress emits one live snapshot.
func (s *state) progress(elapsed time.Duration) {
	p := Progress{
		Ops:         s.res.Ops,
		Applied:     s.res.Applied,
		Infeasible:  s.res.Infeasible,
		Skipped:     s.res.Skipped,
		ActiveFlows: len(s.active),
		Elapsed:     elapsed,
	}
	if sec := elapsed.Seconds(); sec > 0 {
		p.DeltasPerSec = float64(s.res.Applied) / sec
	}
	if len(s.durs) > 0 {
		p.P99 = percentile(s.durs, 99)
	}
	if s.res.Applied > 0 {
		p.FallbackRate = float64(s.res.FallbackEvict+s.res.FallbackCascade+s.res.FallbackFull) / float64(s.res.Applied)
	}
	if s.cfg.OnProgress != nil {
		s.cfg.OnProgress(p)
	}
	if m := s.cfg.Metrics; m != nil {
		m.Observe("sched.churn.deltas_per_sec", p.DeltasPerSec)
		m.Observe("sched.churn.p99_seconds", p.P99.Seconds())
		m.Observe("sched.churn.fallback_rate", p.FallbackRate)
	}
}

// finish seals the result: percentiles, throughput, and final counters.
func (s *state) finish() {
	r := s.res
	r.ActiveFlows = len(s.active)
	r.PlacedTx = s.sched.Len()
	r.Digest = Digest(s.sched)
	if sec := r.Elapsed.Seconds(); sec > 0 {
		r.DeltasPerSec = float64(r.Applied) / sec
	}
	if len(s.durs) > 0 {
		r.P50 = percentile(s.durs, 50)
		r.P95 = percentile(s.durs, 95)
		r.P99 = percentile(s.durs, 99)
		sorted := append([]time.Duration(nil), s.durs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		r.Max = sorted[len(sorted)-1]
	}
	if m := s.cfg.Metrics; m != nil {
		const p = "sched.churn."
		m.Count(p+"ops", int64(r.Ops))
		m.Count(p+"applied", int64(r.Applied))
		m.Count(p+"infeasible", int64(r.Infeasible))
		m.Count(p+"skipped", int64(r.Skipped))
		m.Count(p+"batches", int64(r.Batches))
		m.Count(p+"fallback_evict", int64(r.FallbackEvict))
		m.Count(p+"fallback_cascade", int64(r.FallbackCascade))
		m.Count(p+"fallback_full", int64(r.FallbackFull))
		m.Observe(p+"deltas_per_sec", r.DeltasPerSec)
		m.Observe(p+"p99_seconds", r.P99.Seconds())
	}
}

// percentile returns the q-th percentile (nearest-rank) of durs without
// mutating it.
func percentile(durs []time.Duration, q int) time.Duration {
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (len(sorted)*q + 99) / 100
	if idx < 1 {
		idx = 1
	}
	return sorted[idx-1]
}

// Digest is the canonical digest of a schedule's contents: its
// transmissions sorted into a history-independent order and hashed. Two
// schedules hold the same cells iff their digests are equal, whatever
// sequence of placements, removals, and rollbacks produced them.
func Digest(s *schedule.Schedule) string {
	txs := append([]schedule.Tx(nil), s.Txs()...)
	sort.Slice(txs, func(i, j int) bool {
		a, b := txs[i], txs[j]
		if a.Slot != b.Slot {
			return a.Slot < b.Slot
		}
		if a.Offset != b.Offset {
			return a.Offset < b.Offset
		}
		if a.FlowID != b.FlowID {
			return a.FlowID < b.FlowID
		}
		if a.Instance != b.Instance {
			return a.Instance < b.Instance
		}
		if a.Hop != b.Hop {
			return a.Hop < b.Hop
		}
		return a.Attempt < b.Attempt
	})
	h := sha256.New()
	var buf []byte
	for _, tx := range txs {
		buf = fmt.Appendf(buf[:0], "%d/%d/%d/%d/%d>%d@%d.%d;",
			tx.FlowID, tx.Instance, tx.Hop, tx.Attempt,
			tx.Link.From, tx.Link.To, tx.Slot, tx.Offset)
		h.Write(buf)
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:8])
}

func cloneFlow(f *flow.Flow) *flow.Flow {
	cp := *f
	cp.Route = append([]flow.Link(nil), f.Route...)
	cp.TxBudget = append([]int(nil), f.TxBudget...)
	return &cp
}

func cloneBatch(ops []scheduler.BatchOp) []scheduler.BatchOp {
	out := make([]scheduler.BatchOp, len(ops))
	for i, op := range ops {
		out[i] = op
		out[i].Route = append([]flow.Link(nil), op.Route...)
		if op.Flow != nil {
			out[i].Flow = cloneFlow(op.Flow)
		}
	}
	return out
}

func sameRoute(a, b []flow.Link) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func crossesNode(route []flow.Link, node int) bool {
	for _, l := range route {
		if l.From == node || l.To == node {
			return true
		}
	}
	return false
}
