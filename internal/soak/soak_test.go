package soak

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"wsan/internal/obs"
)

// smokeConfig is a scaled-down operating point that still exercises every
// op kind, both batch and unit paths, and several oracle checkpoints, while
// staying fast enough for -race.
func smokeConfig(seed int64, ops int) Config {
	return Config{
		Flows:        60,
		Channels:     6,
		Ops:          ops,
		Seed:         seed,
		TopoSeed:     1,
		MinPeriodExp: 2,
		MaxPeriodExp: 4,
		BatchEvery:   25,
		BatchSize:    5,
		OracleEvery:  100,
	}
}

// TestSoakChurnSmoke is the churn soak smoke (run under -race in CI): a
// seeded stream of adds, removes, fault-driven reroutes and re-budgets —
// including atomic node-fault batches — against a live grid, with the
// replay oracle asserting zero checksum drift at every checkpoint and at
// the end. Two runs with the same seed must be byte-identical.
func TestSoakChurnSmoke(t *testing.T) {
	ops := 400
	if testing.Short() {
		ops = 150
	}
	reg := obs.NewRegistry()
	cfg := smokeConfig(7, ops)
	cfg.Metrics = reg
	var progressed int
	cfg.ProgressEvery = 50
	cfg.OnProgress = func(p Progress) {
		progressed++
		if p.Ops == 0 || p.Elapsed <= 0 {
			t.Errorf("empty progress snapshot: %+v", p)
		}
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != ops {
		t.Errorf("ops = %d, want %d", res.Ops, ops)
	}
	if res.Applied == 0 || res.OracleChecks == 0 {
		t.Fatalf("soak did nothing: %+v", res)
	}
	if res.Adds == 0 || res.Removes == 0 || res.Reroutes == 0 || res.Rebudgets == 0 {
		t.Errorf("op mix incomplete: adds %d removes %d reroutes %d rebudgets %d",
			res.Adds, res.Removes, res.Reroutes, res.Rebudgets)
	}
	if res.Batches == 0 {
		t.Error("no node-fault batch was applied")
	}
	if res.WarmupAdmitted == 0 || res.ActiveFlows == 0 || res.PlacedTx == 0 {
		t.Errorf("steady state missing: %+v", res)
	}
	if res.P99 < res.P50 || res.Max < res.P99 {
		t.Errorf("latency percentiles disordered: p50 %v p99 %v max %v", res.P50, res.P99, res.Max)
	}
	if progressed == 0 {
		t.Error("no progress snapshot was delivered")
	}

	// Determinism: the same seed reproduces the same schedule and counters.
	again, err := Run(context.Background(), smokeConfig(7, ops))
	if err != nil {
		t.Fatal(err)
	}
	if again.Digest != res.Digest {
		t.Errorf("digest not reproducible: %s vs %s", again.Digest, res.Digest)
	}
	if again.Applied != res.Applied || again.PlacedTx != res.PlacedTx ||
		again.Infeasible != res.Infeasible || again.Batches != res.Batches {
		t.Errorf("counters not reproducible:\n first %+v\nsecond %+v", res, again)
	}
}

// TestSoakConcurrentRuns drives two independent soaks in parallel — the
// delta scheduler's package-level scratch pools are shared across them, so
// this is the race-detector coverage for the pooled hot path. Each run must
// still match its own sequential digest.
func TestSoakConcurrentRuns(t *testing.T) {
	ops := 200
	if testing.Short() {
		ops = 80
	}
	seeds := []int64{3, 11}
	got := make([]string, len(seeds))
	var wg sync.WaitGroup
	for i, seed := range seeds {
		wg.Add(1)
		go func(i int, seed int64) {
			defer wg.Done()
			res, err := Run(context.Background(), smokeConfig(seed, ops))
			if err != nil {
				t.Errorf("seed %d: %v", seed, err)
				return
			}
			got[i] = res.Digest
		}(i, seed)
	}
	wg.Wait()
	for i, seed := range seeds {
		res, err := Run(context.Background(), smokeConfig(seed, ops))
		if err != nil {
			t.Fatalf("sequential seed %d: %v", seed, err)
		}
		if got[i] != res.Digest {
			t.Errorf("seed %d: concurrent digest %s != sequential %s", seed, got[i], res.Digest)
		}
	}
}

// TestSoakCancellation: a cancelled context stops the run between
// operations with ctx.Err().
func TestSoakCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, smokeConfig(1, 50)); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSoakHeapStable is the arena-recycling regression test: once the
// steady state is warm (25% of the run — every pool, arena, and pair-count
// cache has seen its working set), the live heap must not keep growing
// with churn. Before chunked recyclable arenas, every delta leaked arena
// segments and the heap grew linearly with the op count.
func TestSoakHeapStable(t *testing.T) {
	ops := 1_200
	if testing.Short() {
		ops = 400
	}
	cfg := smokeConfig(5, ops)
	cfg.ProgressEvery = ops / 4
	var quarter uint64
	cfg.OnProgress = func(p Progress) {
		if quarter != 0 {
			return
		}
		runtime.GC()
		var mem runtime.MemStats
		runtime.ReadMemStats(&mem)
		quarter = mem.HeapAlloc
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if quarter == 0 {
		t.Fatal("no 25% heap sample was taken")
	}
	// Allow 20% relative growth plus a small absolute floor for runtime
	// noise; a per-op leak at this op count would blow far past it.
	limit := quarter + quarter/5 + 2<<20
	if res.HeapEndBytes > limit {
		t.Fatalf("heap grew under churn: %d B at 25%% of the run, %d B at the end (limit %d)",
			quarter, res.HeapEndBytes, limit)
	}
	t.Logf("heap: start %d B, 25%% %d B, end %d B over %d applied deltas (%.0f deltas/sec, p99 %v)",
		res.HeapStartBytes, quarter, res.HeapEndBytes, res.Applied, res.DeltasPerSec, res.P99)
}

// TestSoakConfigValidation rejects unrunnable configs.
func TestSoakConfigValidation(t *testing.T) {
	for _, cfg := range []Config{{}, {Flows: 10}, {Flows: 10, Channels: 4, Ops: -1}} {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
}

// TestSoakDigestCanonical: the digest must be order-independent — it is
// the drift detector, so schedules holding the same cells via different
// histories must agree.
func TestSoakDigestCanonical(t *testing.T) {
	res, err := Run(context.Background(), smokeConfig(2, 60))
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest == "" {
		t.Fatal("empty digest")
	}
	if res.Elapsed <= 0 || res.DeltasPerSec <= 0 {
		t.Errorf("throughput not measured: %+v", res)
	}
}

// TestPercentileDoesNotMutateSamples pins percentile's copy-before-sort
// contract: the latency buffer is shared by the progress callback (p99 every
// interval) and the final report (p50/p95/p99 over the same slice), so an
// in-place sort would silently reorder the live buffer between readers and
// skew every later percentile. The samples stay permuted, and the answers
// match the values computed from a pre-sorted copy.
func TestPercentileDoesNotMutateSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples := make([]time.Duration, 101)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Microsecond
	}
	rng.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
	orig := append([]time.Duration(nil), samples...)

	// 1..101 µs: percentile q lands exactly on ceil(101·q/100) µs.
	for _, c := range []struct {
		q    int
		want time.Duration
	}{
		{50, 51 * time.Microsecond},
		{95, 96 * time.Microsecond},
		{99, 100 * time.Microsecond},
		{100, 101 * time.Microsecond},
	} {
		if got := percentile(samples, c.q); got != c.want {
			t.Errorf("percentile(%d) = %v, want %v", c.q, got, c.want)
		}
		if !reflect.DeepEqual(samples, orig) {
			t.Fatalf("percentile(%d) mutated its input", c.q)
		}
	}
	// Interleaved progress/report reads over the permuted buffer agree.
	if p1, p2 := percentile(samples, 99), percentile(samples, 99); p1 != p2 {
		t.Fatalf("repeated percentile(99) disagree: %v vs %v", p1, p2)
	}
}
