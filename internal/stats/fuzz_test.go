package stats

import (
	"math"
	"testing"
)

// FuzzKSTest asserts the K-S invariants for arbitrary inputs: D and P stay
// in [0,1], the test is symmetric, and identical samples are never rejected.
func FuzzKSTest(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{4, 5, 6})
	f.Add([]byte{0}, []byte{0})
	f.Add([]byte{255, 0, 128}, []byte{1})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		a := bytesToFloats(rawA)
		b := bytesToFloats(rawB)
		res, err := KSTest(a, b)
		if len(a) == 0 || len(b) == 0 {
			if err == nil {
				t.Fatal("empty sample accepted")
			}
			return
		}
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if res.D < 0 || res.D > 1 || math.IsNaN(res.D) {
			t.Fatalf("D out of range: %v", res.D)
		}
		if res.P < 0 || res.P > 1 || math.IsNaN(res.P) {
			t.Fatalf("P out of range: %v", res.P)
		}
		rev, err := KSTest(b, a)
		if err != nil {
			t.Fatalf("reverse errored: %v", err)
		}
		if rev.D != res.D || rev.P != res.P {
			t.Fatalf("asymmetric: (%v,%v) vs (%v,%v)", res.D, res.P, rev.D, rev.P)
		}
		same, err := KSTest(a, a)
		if err != nil {
			t.Fatal(err)
		}
		if same.D != 0 || same.Reject(0.05) {
			t.Fatalf("identical samples rejected: %+v", same)
		}
	})
}

// FuzzQuantile asserts quantile ordering and range membership.
func FuzzQuantile(f *testing.F) {
	f.Add([]byte{10, 20, 30})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		xs := bytesToFloats(raw)
		q1 := Quantile(xs, 0.25)
		q2 := Quantile(xs, 0.5)
		q3 := Quantile(xs, 0.75)
		if len(xs) == 0 {
			if !math.IsNaN(q2) {
				t.Fatal("empty input should be NaN")
			}
			return
		}
		if q1 > q2 || q2 > q3 {
			t.Fatalf("quantiles out of order: %v %v %v", q1, q2, q3)
		}
		lo, hi := Quantile(xs, 0), Quantile(xs, 1)
		if q2 < lo || q2 > hi {
			t.Fatalf("median %v outside [%v, %v]", q2, lo, hi)
		}
	})
}

func bytesToFloats(raw []byte) []float64 {
	out := make([]float64, 0, len(raw))
	for _, b := range raw {
		out = append(out, float64(b)/255)
	}
	return out
}
