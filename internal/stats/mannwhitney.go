package stats

import (
	"fmt"
	"math"
	"sort"
)

// MWUResult is the outcome of a two-sample Mann-Whitney U test (Wilcoxon
// rank-sum), provided as an alternative to the paper's Kolmogorov-Smirnov
// choice: MWU is sensitive to location shifts specifically, where K-S
// responds to any distributional difference.
type MWUResult struct {
	// U is the Mann-Whitney statistic of the first sample.
	U float64
	// P is the two-sided p-value under the normal approximation with tie
	// correction (adequate for n ≥ ~8 per sample; the detection policy's 18
	// samples per epoch qualify).
	P float64
}

// Reject reports whether the null hypothesis (same distribution) is
// rejected at significance level alpha.
func (r MWUResult) Reject(alpha float64) bool { return r.P < alpha }

// MannWhitneyU runs the two-sample Mann-Whitney U test.
func MannWhitneyU(a, b []float64) (MWUResult, error) {
	if len(a) == 0 || len(b) == 0 {
		return MWUResult{}, fmt.Errorf("mann-whitney: empty sample (|a|=%d, |b|=%d)", len(a), len(b))
	}
	type obs struct {
		v     float64
		fromA bool
	}
	all := make([]obs, 0, len(a)+len(b))
	for _, v := range a {
		all = append(all, obs{v, true})
	}
	for _, v := range b {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Assign mid-ranks, accumulating the tie-correction term Σ(t³−t).
	n := len(all)
	ranks := make([]float64, n)
	tieTerm := 0.0
	for i := 0; i < n; {
		j := i
		for j < n && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	var rankSumA float64
	for i, o := range all {
		if o.fromA {
			rankSumA += ranks[i]
		}
	}
	na, nb := float64(len(a)), float64(len(b))
	u := rankSumA - na*(na+1)/2
	mean := na * nb / 2
	nTot := na + nb
	variance := na * nb / 12 * ((nTot + 1) - tieTerm/(nTot*(nTot-1)))
	if variance <= 0 {
		// All observations tied: no evidence of difference.
		return MWUResult{U: u, P: 1}, nil
	}
	// Continuity-corrected z.
	z := (math.Abs(u-mean) - 0.5) / math.Sqrt(variance)
	if z < 0 {
		z = 0
	}
	p := 2 * (1 - stdNormalCDF(z))
	if p > 1 {
		p = 1
	}
	return MWUResult{U: u, P: p}, nil
}

// stdNormalCDF is Φ(z) via the complementary error function.
func stdNormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}
