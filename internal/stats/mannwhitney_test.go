package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestMannWhitneyIdentical(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	res, err := MannWhitneyU(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.05) {
		t.Errorf("identical samples rejected: %+v", res)
	}
}

func TestMannWhitneyAllTied(t *testing.T) {
	a := []float64{5, 5, 5, 5}
	b := []float64{5, 5, 5}
	res, err := MannWhitneyU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Errorf("all-tied P = %v, want 1", res.P)
	}
}

func TestMannWhitneyShifted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	detected := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		a := make([]float64, 18)
		b := make([]float64, 18)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64() + 1.2
		}
		res, err := MannWhitneyU(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reject(0.05) {
			detected++
		}
	}
	if detected < trials*85/100 {
		t.Errorf("1.2σ shift detected only %d/%d times", detected, trials)
	}
}

func TestMannWhitneyFalsePositiveRate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rejects := 0
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		a := make([]float64, 18)
		b := make([]float64, 18)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		res, err := MannWhitneyU(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reject(0.05) {
			rejects++
		}
	}
	if rejects > trials*8/100 {
		t.Errorf("false positive rate %d/%d exceeds ~5%%", rejects, trials)
	}
}

func TestMannWhitneyKnownValue(t *testing.T) {
	// Classic small example: a = {1,2,3}, b = {4,5,6}: U_a = 0, perfectly
	// separated.
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	res, err := MannWhitneyU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.U != 0 {
		t.Errorf("U = %v, want 0", res.U)
	}
	rev, err := MannWhitneyU(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if rev.U != 9 {
		t.Errorf("reversed U = %v, want n·m = 9", rev.U)
	}
	if math.Abs(res.P-rev.P) > 1e-12 {
		t.Errorf("two-sided p must be symmetric: %v vs %v", res.P, rev.P)
	}
}

func TestMannWhitneyErrors(t *testing.T) {
	if _, err := MannWhitneyU(nil, []float64{1}); err == nil {
		t.Error("empty first sample should fail")
	}
	if _, err := MannWhitneyU([]float64{1}, nil); err == nil {
		t.Error("empty second sample should fail")
	}
}

func TestStdNormalCDF(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1.96, 0.975},
		{-1.96, 0.025},
	}
	for _, tc := range cases {
		if got := stdNormalCDF(tc.z); math.Abs(got-tc.want) > 0.001 {
			t.Errorf("Φ(%v) = %v, want %v", tc.z, got, tc.want)
		}
	}
}
