// Package stats provides the statistics the detection policy (Sec. VI) and
// the evaluation (Sec. VII) need: empirical CDFs, the two-sample
// Kolmogorov-Smirnov test with an asymptotic p-value, quantiles and
// five-number summaries for box plots, and small helpers over histograms.
// Everything is dependency-free and deterministic.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation
// between order statistics. It returns NaN for empty input or q outside
// [0,1]. The input need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// FiveNum is a box-plot five-number summary.
type FiveNum struct {
	Min, Q1, Median, Q3, Max float64
}

// Summary computes the five-number summary, or an error for empty input.
func Summary(xs []float64) (FiveNum, error) {
	if len(xs) == 0 {
		return FiveNum{}, fmt.Errorf("summary of empty sample")
	}
	return FiveNum{
		Min:    Quantile(xs, 0),
		Q1:     Quantile(xs, 0.25),
		Median: Quantile(xs, 0.5),
		Q3:     Quantile(xs, 0.75),
		Max:    Quantile(xs, 1),
	}, nil
}

// String renders the summary in box-plot order.
func (f FiveNum) String() string {
	return fmt.Sprintf("min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f",
		f.Min, f.Q1, f.Median, f.Q3, f.Max)
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from a sample (copied and sorted).
func NewECDF(xs []float64) *ECDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// At returns F(x) = P(X ≤ x), the fraction of the sample ≤ x.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	// Index of the first element > x.
	idx := sort.SearchFloat64s(e.sorted, x)
	for idx < len(e.sorted) && e.sorted[idx] == x {
		idx++
	}
	return float64(idx) / float64(len(e.sorted))
}

// KSResult is the outcome of a two-sample Kolmogorov-Smirnov test.
type KSResult struct {
	// D is the maximum distance between the two ECDFs, in [0,1].
	D float64
	// P is the asymptotic two-sided p-value.
	P float64
}

// Reject reports whether the null hypothesis (same distribution) is rejected
// at significance level alpha.
func (r KSResult) Reject(alpha float64) bool { return r.P < alpha }

// KSTest runs the two-sample Kolmogorov-Smirnov test. It makes no assumption
// about the underlying distributions (the reason the paper picks it) and
// accepts any sample sizes ≥ 1.
func KSTest(a, b []float64) (KSResult, error) {
	if len(a) == 0 || len(b) == 0 {
		return KSResult{}, fmt.Errorf("ks test: empty sample (|a|=%d, |b|=%d)", len(a), len(b))
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	na, nb := len(sa), len(sb)
	var d float64
	i, j := 0, 0
	for i < na && j < nb {
		x := math.Min(sa[i], sb[j])
		for i < na && sa[i] <= x {
			i++
		}
		for j < nb && sb[j] <= x {
			j++
		}
		diff := math.Abs(float64(i)/float64(na) - float64(j)/float64(nb))
		if diff > d {
			d = diff
		}
	}
	ne := float64(na) * float64(nb) / float64(na+nb)
	sqrtNe := math.Sqrt(ne)
	lambda := (sqrtNe + 0.12 + 0.11/sqrtNe) * d
	return KSResult{D: d, P: ksProb(lambda)}, nil
}

// ksProb is the asymptotic Kolmogorov survival function
// Q(λ) = 2 Σ_{j≥1} (−1)^{j−1} e^{−2 j² λ²}, clamped to [0,1].
func ksProb(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for j := 1; j <= 100; j++ {
		term := sign * math.Exp(-2*float64(j*j)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Proportions normalizes an integer histogram to fractions summing to 1.
// An empty histogram yields an empty map.
func Proportions(hist map[int]int) map[int]float64 {
	total := 0
	for _, v := range hist {
		total += v
	}
	out := make(map[int]float64, len(hist))
	if total == 0 {
		return out
	}
	for k, v := range hist {
		out[k] = float64(v) / float64(total)
	}
	return out
}

// SortedKeys returns a histogram's keys in ascending order, for rendering.
func SortedKeys(hist map[int]int) []int {
	keys := make([]int, 0, len(hist))
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
