package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 4, 2} // sorted: 1 2 3 4
	tests := []struct {
		q, want float64
	}{
		{0, 1},
		{1, 4},
		{0.5, 2.5},
		{0.25, 1.75},
		{0.75, 3.25},
	}
	for _, tc := range tests {
		if got := Quantile(xs, tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) || !math.IsNaN(Quantile(xs, -0.1)) || !math.IsNaN(Quantile(xs, 1.1)) {
		t.Error("invalid quantile inputs should be NaN")
	}
	if got := Quantile([]float64{7}, 0.5); got != 7 {
		t.Errorf("single-element quantile = %v, want 7", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	_ = Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestSummary(t *testing.T) {
	fn, err := Summary([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if fn.Min != 1 || fn.Median != 3 || fn.Max != 5 || fn.Q1 != 2 || fn.Q3 != 4 {
		t.Errorf("Summary = %+v", fn)
	}
	if _, err := Summary(nil); err == nil {
		t.Error("Summary(nil) should fail")
	}
	if s := fn.String(); s == "" {
		t.Error("String should be non-empty")
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 4})
	tests := []struct {
		x, want float64
	}{
		{0.5, 0},
		{1, 0.25},
		{2, 0.75},
		{3, 0.75},
		{4, 1},
		{5, 1},
	}
	for _, tc := range tests {
		if got := e.At(tc.x); got != tc.want {
			t.Errorf("F(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if e.Len() != 4 {
		t.Errorf("Len = %d, want 4", e.Len())
	}
	if !math.IsNaN(NewECDF(nil).At(1)) {
		t.Error("empty ECDF should return NaN")
	}
}

func TestKSTestIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	res, err := KSTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.D != 0 {
		t.Errorf("D = %v, want 0 for identical samples", res.D)
	}
	if res.P < 0.99 {
		t.Errorf("P = %v, want ≈1 for identical samples", res.P)
	}
	if res.Reject(0.05) {
		t.Error("identical samples must not be rejected")
	}
}

func TestKSTestDisjointSamples(t *testing.T) {
	a := make([]float64, 30)
	b := make([]float64, 30)
	for i := range a {
		a[i] = float64(i)
		b[i] = float64(i) + 1000
	}
	res, err := KSTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.D != 1 {
		t.Errorf("D = %v, want 1 for disjoint samples", res.D)
	}
	if !res.Reject(0.05) {
		t.Errorf("disjoint samples must be rejected, P = %v", res.P)
	}
}

func TestKSTestSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rejects := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		a := make([]float64, 25)
		b := make([]float64, 25)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		res, err := KSTest(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reject(0.05) {
			rejects++
		}
	}
	// False-positive rate should be around alpha; the asymptotic
	// approximation is conservative for small samples, so allow slack.
	if rejects > trials*12/100 {
		t.Errorf("false positive rate too high: %d/%d", rejects, trials)
	}
}

func TestKSTestShiftedDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	detected := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		a := make([]float64, 30)
		b := make([]float64, 30)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64() + 1.5
		}
		res, err := KSTest(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reject(0.05) {
			detected++
		}
	}
	if detected < trials*85/100 {
		t.Errorf("1.5σ shift detected only %d/%d times", detected, trials)
	}
}

func TestKSTestErrors(t *testing.T) {
	if _, err := KSTest(nil, []float64{1}); err == nil {
		t.Error("empty first sample should fail")
	}
	if _, err := KSTest([]float64{1}, nil); err == nil {
		t.Error("empty second sample should fail")
	}
}

// Property: D is symmetric and within [0,1]; p within [0,1].
func TestKSProperties(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		na, nb := 1+rng.Intn(40), 1+rng.Intn(40)
		a := make([]float64, na)
		b := make([]float64, nb)
		for i := range a {
			a[i] = rng.Float64()
		}
		for i := range b {
			b[i] = rng.Float64() * (1 + rng.Float64())
		}
		r1, err1 := KSTest(a, b)
		r2, err2 := KSTest(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return r1.D == r2.D && r1.P == r2.P &&
			r1.D >= 0 && r1.D <= 1 && r1.P >= 0 && r1.P <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKSProbBounds(t *testing.T) {
	if got := ksProb(0); got != 1 {
		t.Errorf("ksProb(0) = %v, want 1", got)
	}
	if got := ksProb(-1); got != 1 {
		t.Errorf("ksProb(-1) = %v, want 1", got)
	}
	if got := ksProb(5); got > 1e-9 {
		t.Errorf("ksProb(5) = %v, want ≈0", got)
	}
	// Monotone decreasing.
	prev := 1.0
	for l := 0.1; l < 3; l += 0.1 {
		p := ksProb(l)
		if p > prev+1e-12 {
			t.Fatalf("ksProb not monotone at %v", l)
		}
		prev = p
	}
	// Known value: Q(0.828) ≈ 0.50 (the KS distribution median).
	if p := ksProb(0.8276); math.Abs(p-0.5) > 0.01 {
		t.Errorf("ksProb(0.8276) = %v, want ≈0.5", p)
	}
}

func TestProportions(t *testing.T) {
	got := Proportions(map[int]int{1: 3, 2: 1})
	if got[1] != 0.75 || got[2] != 0.25 {
		t.Errorf("Proportions = %v", got)
	}
	if len(Proportions(nil)) != 0 {
		t.Error("empty histogram should give empty map")
	}
}

func TestSortedKeys(t *testing.T) {
	got := SortedKeys(map[int]int{4: 1, 1: 1, 3: 1})
	want := []int{1, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedKeys = %v, want %v", got, want)
		}
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("Median = %v, want 3", got)
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("Median(nil) should be NaN")
	}
}
