package topology

import (
	"fmt"
	"sort"
)

// ChannelQuality summarizes how usable one channel is across the whole
// testbed, the input to TSCH channel blacklisting (Sec. III-A: "channels
// with extreme noises can be blacklisted").
type ChannelQuality struct {
	// Channel is the channel index (0..15).
	Channel int
	// GoodLinks counts directed links with PRR ≥ the quality threshold on
	// this channel.
	GoodLinks int
	// MeanPRR averages the PRR over all directed links that are non-zero on
	// at least one channel (so dead air doesn't dilute the comparison).
	MeanPRR float64
}

// RankChannels evaluates every channel's quality at the given PRR threshold,
// ordered best first (by good-link count, then mean PRR, then index).
func (tb *Testbed) RankChannels(prrT float64) []ChannelQuality {
	n := len(tb.Nodes)
	// Links that exist on any channel.
	type pair struct{ u, v int }
	var live []pair
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			for ch := 0; ch < NumChannels; ch++ {
				if tb.PRR(u, v, ch) > 0 {
					live = append(live, pair{u, v})
					break
				}
			}
		}
	}
	out := make([]ChannelQuality, NumChannels)
	for ch := 0; ch < NumChannels; ch++ {
		q := ChannelQuality{Channel: ch}
		sum := 0.0
		for _, p := range live {
			prr := tb.PRR(p.u, p.v, ch)
			sum += prr
			if prr >= prrT {
				q.GoodLinks++
			}
		}
		if len(live) > 0 {
			q.MeanPRR = sum / float64(len(live))
		}
		out[ch] = q
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].GoodLinks != out[j].GoodLinks {
			return out[i].GoodLinks > out[j].GoodLinks
		}
		if out[i].MeanPRR != out[j].MeanPRR {
			return out[i].MeanPRR > out[j].MeanPRR
		}
		return out[i].Channel < out[j].Channel
	})
	return out
}

// BestChannels returns the n highest-quality channel indices in ascending
// index order — the blacklist-complement a network operator would configure.
func (tb *Testbed) BestChannels(n int, prrT float64) ([]int, error) {
	if n <= 0 || n > NumChannels {
		return nil, fmt.Errorf("best channels: n %d out of (0,%d]", n, NumChannels)
	}
	ranked := tb.RankChannels(prrT)
	chs := make([]int, n)
	for i := 0; i < n; i++ {
		chs[i] = ranked[i].Channel
	}
	sort.Ints(chs)
	return chs, nil
}
