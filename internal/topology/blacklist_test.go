package topology

import (
	"testing"
)

// jammedTestbed builds a custom testbed where channel 5 is unusable and
// channel 2 is the best.
func jammedTestbed(t *testing.T) *Testbed {
	t.Helper()
	nodes := make([]Node, 6)
	for i := range nodes {
		nodes[i] = Node{ID: i, X: float64(i) * 3}
	}
	gain := func(u, v, ch int) float64 {
		base := -89.0 // marginal: only a boost clears PRR_t
		switch ch {
		case 5:
			return -120 // jammed: dead on every link
		case 2:
			return base + 5 // best channel
		default:
			return base
		}
	}
	tb, err := Custom("jammed", nodes, gain, DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestRankChannels(t *testing.T) {
	tb := jammedTestbed(t)
	ranked := tb.RankChannels(0.9)
	if len(ranked) != NumChannels {
		t.Fatalf("ranked %d channels", len(ranked))
	}
	if ranked[0].Channel != 2 {
		t.Errorf("best channel = %d, want 2", ranked[0].Channel)
	}
	if worst := ranked[NumChannels-1]; worst.Channel != 5 || worst.GoodLinks != 0 {
		t.Errorf("worst channel = %+v, want channel 5 with 0 good links", worst)
	}
	// Quality values are within range.
	for _, q := range ranked {
		if q.MeanPRR < 0 || q.MeanPRR > 1 {
			t.Errorf("channel %d mean PRR %v out of range", q.Channel, q.MeanPRR)
		}
	}
}

func TestBestChannels(t *testing.T) {
	tb := jammedTestbed(t)
	chs, err := tb.BestChannels(4, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(chs) != 4 {
		t.Fatalf("got %d channels", len(chs))
	}
	for i := 1; i < len(chs); i++ {
		if chs[i] <= chs[i-1] {
			t.Error("channels must be in ascending order")
		}
	}
	for _, ch := range chs {
		if ch == 5 {
			t.Error("jammed channel 5 must be blacklisted")
		}
	}
	// The selection must be usable for graph construction.
	gc, err := tb.CommGraph(chs, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if gc.NumEdges() == 0 {
		t.Error("best channels yield no communication links")
	}
}

func TestBestChannelsValidation(t *testing.T) {
	tb := jammedTestbed(t)
	if _, err := tb.BestChannels(0, 0.9); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := tb.BestChannels(17, 0.9); err == nil {
		t.Error("n=17 should fail")
	}
}

func TestBestChannelsOnGenerated(t *testing.T) {
	tb := genWUSTL(t)
	chs, err := tb.BestChannels(4, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// The chosen channels must be at least as good (by good-link count) as
	// the default first-4 selection.
	count := func(sel []int) int {
		total := 0
		ranked := tb.RankChannels(0.9)
		byCh := make(map[int]ChannelQuality, len(ranked))
		for _, q := range ranked {
			byCh[q.Channel] = q
		}
		for _, ch := range sel {
			total += byCh[ch].GoodLinks
		}
		return total
	}
	if count(chs) < count(Channels(4)) {
		t.Errorf("BestChannels(%v) worse than default %v", chs, Channels(4))
	}
}
