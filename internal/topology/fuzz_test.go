package topology

import (
	"bytes"
	"testing"
)

// FuzzDecode hardens the testbed JSON decoder against malformed input: it
// must either return an error or a testbed that round-trips.
func FuzzDecode(f *testing.F) {
	tb, err := Generate(tinyConfig(), 1)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tb.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","nodes":[{"id":0},{"id":1}],"links":[]}`))
	f.Add([]byte(`{"name":"x","nodes":[{"id":0},{"id":1}],"links":[{"from":0,"to":5}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decoded must be internally consistent.
		n := got.NumNodes()
		if n < 2 {
			t.Fatalf("decoder accepted %d nodes", n)
		}
		for u := 0; u < n; u++ {
			for ch := 0; ch < NumChannels; ch++ {
				if p := got.PRR(u, u, ch); p != 0 {
					t.Fatalf("self PRR %v", p)
				}
			}
		}
		var out bytes.Buffer
		if err := got.Encode(&out); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}

func tinyConfig() GenConfig {
	cfg := DefaultGenConfig()
	cfg.NumNodes = 4
	cfg.Floors = 1
	cfg.FloorWidthM = 10
	cfg.FloorDepthM = 10
	return cfg
}
