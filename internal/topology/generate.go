package topology

import (
	"fmt"
	"math"
	"math/rand"

	"wsan/internal/radio"
)

// GenConfig parameterizes the synthetic testbed generator. The zero value is
// not usable; start from DefaultGenConfig, IndriyaConfig, or WUSTLConfig.
type GenConfig struct {
	Name     string
	NumNodes int
	// Floors is the number of building storeys; nodes are split evenly.
	Floors int
	// FloorWidthM and FloorDepthM are the floor-plate dimensions in meters.
	FloorWidthM float64
	FloorDepthM float64
	// FloorHeightM is the storey height in meters.
	FloorHeightM float64
	// PathLoss is the large-scale propagation model.
	PathLoss radio.PathLossModel
	// ShadowSigmaDB is the per-link lognormal shadowing std-dev (symmetric,
	// channel-independent: obstacles affect all channels).
	ShadowSigmaDB float64
	// ChannelFadeSigmaDB is the per-link per-channel multipath fading
	// std-dev (symmetric per channel: frequency-selective fading).
	ChannelFadeSigmaDB float64
	// NodeOffsetSigmaDB is the per-node hardware TX/RX calibration std-dev;
	// it is what makes link PRRs asymmetric.
	NodeOffsetSigmaDB float64
	// TxPowerDBm is the transmit power used for the PRR survey.
	TxPowerDBm float64
	// NoiseFloorDBm is the receiver noise floor.
	NoiseFloorDBm float64
	// PacketBits is the probe frame length used to convert SNR to PRR.
	PacketBits int
	// MeasurementFloor zeroes out PRRs below this value: a real survey keeps
	// only usable neighbors in the neighbor table, so weak couplings are
	// invisible to the network manager — the very estimation error that
	// motivates conservative reuse (couplings below the floor still
	// interfere in the simulator, they are just not in G_R).
	MeasurementFloor float64
	// ProbeCount quantizes PRRs to multiples of 1/ProbeCount, matching a
	// survey that sends ProbeCount probes per link per channel. Zero
	// disables quantization.
	ProbeCount int
	// Placement selects the node layout per floor (default PlacementGrid).
	Placement Placement
	// TemporalFadeSigmaDB is the total temporal variation the survey
	// observes over its collection window: fast per-slot fading plus the
	// slow environment drift between sessions. The measured PRR is the
	// variation-averaged reception probability, so link selection absorbs
	// both; set it to sqrt(FadingSigmaDB² + SurveyDriftSigmaDB²) of the
	// simulator for consistency. Zero means the survey sees only the mean
	// SNR.
	TemporalFadeSigmaDB float64
}

// DefaultGenConfig returns a mid-size three-floor deployment.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Name:                "synthetic",
		NumNodes:            60,
		Floors:              3,
		FloorWidthM:         70,
		FloorDepthM:         32,
		FloorHeightM:        4,
		PathLoss:            radio.DefaultPathLoss(),
		ShadowSigmaDB:       4.0,
		ChannelFadeSigmaDB:  2.0,
		NodeOffsetSigmaDB:   1.0,
		TxPowerDBm:          radio.DefaultTxPowerDBm,
		NoiseFloorDBm:       radio.DefaultNoiseFloorDBm,
		PacketBits:          radio.DefaultPacketBits,
		MeasurementFloor:    0.30,
		ProbeCount:          100,
		TemporalFadeSigmaDB: 3.5,
	}
}

// IndriyaConfig approximates the 80-node, 3-storey Indriya testbed at NUS:
// large floor plates and a dense deployment.
func IndriyaConfig() GenConfig {
	cfg := DefaultGenConfig()
	cfg.Name = "indriya"
	cfg.NumNodes = 80
	cfg.FloorWidthM = 140
	cfg.FloorDepthM = 56
	cfg.PathLoss.Exponent = 3.8
	return cfg
}

// WUSTLConfig approximates the 60-node, 3-floor WUSTL testbed in Bryan Hall.
func WUSTLConfig() GenConfig {
	cfg := DefaultGenConfig()
	cfg.Name = "wustl"
	cfg.NumNodes = 60
	cfg.FloorWidthM = 100
	cfg.FloorDepthM = 40
	cfg.PathLoss.Exponent = 3.7
	return cfg
}

// Indriya generates the Indriya-like testbed from a seed.
func Indriya(seed int64) (*Testbed, error) { return Generate(IndriyaConfig(), seed) }

// WUSTL generates the WUSTL-like testbed from a seed.
func WUSTL(seed int64) (*Testbed, error) { return Generate(WUSTLConfig(), seed) }

// Generate synthesizes a testbed: it places nodes on a jittered grid per
// floor, realizes the static radio environment (shadowing, per-channel
// fading, per-node offsets), and derives the per-channel PRR matrices through
// the interference-free SINR→PRR curve. All randomness comes from the seed;
// the same (config, seed) pair always yields the identical testbed.
func Generate(cfg GenConfig, seed int64) (*Testbed, error) {
	if cfg.NumNodes < 2 {
		return nil, fmt.Errorf("generate %s: need at least 2 nodes, have %d", cfg.Name, cfg.NumNodes)
	}
	if cfg.Floors < 1 {
		return nil, fmt.Errorf("generate %s: need at least 1 floor, have %d", cfg.Name, cfg.Floors)
	}
	rng := rand.New(rand.NewSource(seed))
	tb := &Testbed{
		Name:  cfg.Name,
		Nodes: placeNodes(cfg, rng),
	}
	n := cfg.NumNodes
	tb.gain = make([]float64, n*n*NumChannels)
	tb.prr = make([]float64, n*n*NumChannels)

	// Per-node hardware offsets (TX power and RX sensitivity calibration).
	txOff := make([]float64, n)
	rxOff := make([]float64, n)
	for i := 0; i < n; i++ {
		txOff[i] = rng.NormFloat64() * cfg.NodeOffsetSigmaDB
		rxOff[i] = rng.NormFloat64() * cfg.NodeOffsetSigmaDB
	}

	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			shadow := rng.NormFloat64() * cfg.ShadowSigmaDB
			floors := abs(tb.Nodes[u].Floor - tb.Nodes[v].Floor)
			loss := cfg.PathLoss.LossDB(tb.Distance(u, v), floors) + shadow
			for ch := 0; ch < NumChannels; ch++ {
				chFade := rng.NormFloat64() * cfg.ChannelFadeSigmaDB
				// u→v and v→u share path loss, shadowing, and channel fade;
				// they differ only in the endpoint hardware offsets.
				guv := cfg.TxPowerDBm - loss - chFade + txOff[u] + rxOff[v]
				gvu := cfg.TxPowerDBm - loss - chFade + txOff[v] + rxOff[u]
				tb.gain[tb.index(u, v, ch)] = guv
				tb.gain[tb.index(v, u, ch)] = gvu
				tb.prr[tb.index(u, v, ch)] = cfg.measuredPRR(guv)
				tb.prr[tb.index(v, u, ch)] = cfg.measuredPRR(gvu)
			}
		}
		for ch := 0; ch < NumChannels; ch++ {
			tb.gain[tb.index(u, u, ch)] = math.Inf(-1)
		}
	}
	return tb, nil
}

// Custom builds a testbed from explicit link gains, for tests and
// hand-crafted deployments: gain(u, v, ch) must return the mean received
// power in dBm at v when u transmits on channel index ch. PRRs are derived
// from the gains exactly as Generate does, using cfg's receiver parameters
// (noise floor, packet length, measurement floor, probe quantization).
func Custom(name string, nodes []Node, gain func(u, v, ch int) float64, cfg GenConfig) (*Testbed, error) {
	if len(nodes) < 2 {
		return nil, fmt.Errorf("custom testbed %s: need at least 2 nodes, have %d", name, len(nodes))
	}
	n := len(nodes)
	tb := &Testbed{
		Name:  name,
		Nodes: append([]Node(nil), nodes...),
		gain:  make([]float64, n*n*NumChannels),
		prr:   make([]float64, n*n*NumChannels),
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			for ch := 0; ch < NumChannels; ch++ {
				if u == v {
					tb.gain[tb.index(u, v, ch)] = math.Inf(-1)
					continue
				}
				g := gain(u, v, ch)
				tb.gain[tb.index(u, v, ch)] = g
				tb.prr[tb.index(u, v, ch)] = cfg.measuredPRR(g)
			}
		}
	}
	return tb, nil
}

// gaussHermite7 holds the 7-point Gauss-Hermite nodes and weights for
// integrating against exp(-t²); used to average the PRR curve over
// Gaussian-in-dB temporal fading.
var gaussHermite7 = [7][2]float64{
	{-2.6519613568352334, 0.0009717812450995},
	{-1.6735516287674714, 0.0545155828191270},
	{-0.8162878828589647, 0.4256072526101278},
	{0, 0.8102646175568073},
	{0.8162878828589647, 0.4256072526101278},
	{1.6735516287674714, 0.0545155828191270},
	{2.6519613568352334, 0.0009717812450995},
}

// measuredPRR converts a mean received power to the PRR a link survey would
// record: the fading-averaged interference-free PRR, quantized to the
// probe-count resolution, with sub-floor values reported as zero.
func (cfg GenConfig) measuredPRR(rxDBm float64) float64 {
	snr := rxDBm - cfg.NoiseFloorDBm
	var prr float64
	if cfg.TemporalFadeSigmaDB > 0 {
		// E[PRR(snr + X)], X ~ N(0, σ²), via Gauss-Hermite quadrature:
		// substitute x = √2·σ·t so the weights integrate exp(-t²).
		const sqrtPi = 1.7724538509055160
		for _, nw := range gaussHermite7 {
			x := math.Sqrt2 * cfg.TemporalFadeSigmaDB * nw[0]
			prr += nw[1] * radio.PRR802154(snr+x, cfg.PacketBits)
		}
		prr /= sqrtPi
	} else {
		prr = radio.PRR802154(snr, cfg.PacketBits)
	}
	if cfg.ProbeCount > 0 {
		prr = math.Round(prr*float64(cfg.ProbeCount)) / float64(cfg.ProbeCount)
	}
	if prr < cfg.MeasurementFloor {
		return 0
	}
	if prr > 1 {
		return 1
	}
	return prr
}

// Placement selects how nodes are laid out on each floor.
type Placement int

const (
	// PlacementGrid is a jittered grid, the default — an office floor with
	// devices in most rooms.
	PlacementGrid Placement = iota
	// PlacementCorridor strings nodes along two long corridors per floor,
	// the classic instrumented-hallway testbed layout.
	PlacementCorridor
	// PlacementUniform scatters nodes uniformly at random.
	PlacementUniform
)

// placeNodes lays nodes out on each floor according to cfg.Placement.
func placeNodes(cfg GenConfig, rng *rand.Rand) []Node {
	switch cfg.Placement {
	case PlacementCorridor:
		return placeCorridor(cfg, rng)
	case PlacementUniform:
		return placeUniform(cfg, rng)
	default:
		return placeGrid(cfg, rng)
	}
}

// placeCorridor puts nodes along two corridors at 1/3 and 2/3 of the floor
// depth, evenly spaced with jitter along the corridor axis.
func placeCorridor(cfg GenConfig, rng *rand.Rand) []Node {
	nodes := make([]Node, 0, cfg.NumNodes)
	perFloor := make([]int, cfg.Floors)
	for i := 0; i < cfg.NumNodes; i++ {
		perFloor[i%cfg.Floors]++
	}
	id := 0
	for f := 0; f < cfg.Floors; f++ {
		count := perFloor[f]
		perCorridor := (count + 1) / 2
		for i := 0; i < count; i++ {
			corridor := i / perCorridor
			posInCorridor := i % perCorridor
			dx := cfg.FloorWidthM / float64(perCorridor)
			y := cfg.FloorDepthM / 3
			if corridor == 1 {
				y = 2 * cfg.FloorDepthM / 3
			}
			nodes = append(nodes, Node{
				ID:    id,
				X:     (float64(posInCorridor)+0.5)*dx + (rng.Float64()-0.5)*dx*0.4,
				Y:     y + (rng.Float64()-0.5)*2,
				Z:     float64(f) * cfg.FloorHeightM,
				Floor: f,
			})
			id++
		}
	}
	return nodes
}

// placeUniform scatters nodes uniformly over each floor plate.
func placeUniform(cfg GenConfig, rng *rand.Rand) []Node {
	nodes := make([]Node, 0, cfg.NumNodes)
	for i := 0; i < cfg.NumNodes; i++ {
		f := i % cfg.Floors
		nodes = append(nodes, Node{
			ID:    i,
			X:     rng.Float64() * cfg.FloorWidthM,
			Y:     rng.Float64() * cfg.FloorDepthM,
			Z:     float64(f) * cfg.FloorHeightM,
			Floor: f,
		})
	}
	return nodes
}

// placeGrid lays nodes out on a jittered grid on each floor, mimicking the
// office deployments of the physical testbeds.
func placeGrid(cfg GenConfig, rng *rand.Rand) []Node {
	nodes := make([]Node, 0, cfg.NumNodes)
	perFloor := make([]int, cfg.Floors)
	for i := 0; i < cfg.NumNodes; i++ {
		perFloor[i%cfg.Floors]++
	}
	id := 0
	for f := 0; f < cfg.Floors; f++ {
		count := perFloor[f]
		if count == 0 {
			continue
		}
		// Grid dimensions proportional to the floor aspect ratio.
		cols := int(math.Ceil(math.Sqrt(float64(count) * cfg.FloorWidthM / cfg.FloorDepthM)))
		if cols < 1 {
			cols = 1
		}
		rows := (count + cols - 1) / cols
		dx := cfg.FloorWidthM / float64(cols)
		dy := cfg.FloorDepthM / float64(rows)
		for i := 0; i < count; i++ {
			r, c := i/cols, i%cols
			jx := (rng.Float64() - 0.5) * dx * 0.6
			jy := (rng.Float64() - 0.5) * dy * 0.6
			nodes = append(nodes, Node{
				ID:    id,
				X:     (float64(c)+0.5)*dx + jx,
				Y:     (float64(r)+0.5)*dy + jy,
				Z:     float64(f) * cfg.FloorHeightM,
				Floor: f,
			})
			id++
		}
	}
	return nodes
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
