package topology

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// testbedJSON is the on-disk representation of a testbed. Only directed links
// with a nonzero PRR on at least one channel are stored; everything else is
// implicitly disconnected. Gains are stored so a decoded testbed can still
// drive the network simulator.
type testbedJSON struct {
	Name  string     `json:"name"`
	Nodes []Node     `json:"nodes"`
	Links []linkJSON `json:"links"`
}

type linkJSON struct {
	From int                  `json:"from"`
	To   int                  `json:"to"`
	PRR  [NumChannels]float64 `json:"prr"`
	Gain [NumChannels]float64 `json:"gainDBm"`
}

// Encode writes the testbed as JSON.
func (tb *Testbed) Encode(w io.Writer) error {
	out := testbedJSON{
		Name:  tb.Name,
		Nodes: append([]Node(nil), tb.Nodes...),
	}
	n := len(tb.Nodes)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			any := false
			var lj linkJSON
			lj.From, lj.To = u, v
			for ch := 0; ch < NumChannels; ch++ {
				lj.PRR[ch] = tb.PRR(u, v, ch)
				lj.Gain[ch] = tb.GainDBm(u, v, ch)
				if lj.PRR[ch] > 0 {
					any = true
				}
			}
			if any {
				out.Links = append(out.Links, lj)
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Decode reads a testbed previously written by Encode.
func Decode(r io.Reader) (*Testbed, error) {
	var in testbedJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("decode testbed: %w", err)
	}
	n := len(in.Nodes)
	if n < 2 {
		return nil, fmt.Errorf("decode testbed: %d nodes, need at least 2", n)
	}
	tb := &Testbed{
		Name:  in.Name,
		Nodes: in.Nodes,
		gain:  make([]float64, n*n*NumChannels),
		prr:   make([]float64, n*n*NumChannels),
	}
	for i := range tb.gain {
		tb.gain[i] = math.Inf(-1)
	}
	for _, lj := range in.Links {
		if lj.From < 0 || lj.From >= n || lj.To < 0 || lj.To >= n {
			return nil, fmt.Errorf("decode testbed: link (%d,%d) out of range", lj.From, lj.To)
		}
		for ch := 0; ch < NumChannels; ch++ {
			tb.prr[tb.index(lj.From, lj.To, ch)] = lj.PRR[ch]
			tb.gain[tb.index(lj.From, lj.To, ch)] = lj.Gain[ch]
		}
	}
	return tb, nil
}
