// Package topology synthesizes and represents industrial WSAN testbeds.
//
// The paper evaluates on per-channel PRR link statistics collected from two
// physical deployments: the 80-node Indriya testbed (3 storeys, NUS) and the
// 60-node WUSTL testbed (3 floors). Those traces are not publicly available,
// so this package generates statistically equivalent topologies: nodes placed
// on the floors of a synthetic building, link gains derived from a
// log-distance path-loss model with per-link lognormal shadowing,
// frequency-selective per-channel fading, and per-node hardware offsets, and
// per-channel PRR matrices computed through the same CC2420 SINR→PRR curve
// the network simulator uses.
//
// From a testbed the package builds the two graphs of Sec. IV-B:
//
//   - the communication graph G_c: edge (u,v) iff PRR ≥ PRR_t in BOTH
//     directions on ALL channels in use (links hop over every channel, so
//     they must be reliable on each), and
//   - the channel-reuse graph G_R: edge (u,v) iff PRR > 0 in ANY direction on
//     ANY channel in use — i.e. the nodes can hear each other at all, which
//     is what matters for interference.
package topology

import (
	"fmt"
	"math"

	"wsan/internal/graph"
	"wsan/internal/radio"
)

// NumChannels is the number of IEEE 802.15.4 channels in the 2.4 GHz band.
// Channels are addressed by index 0..15 throughout; index i is IEEE channel
// 11+i (so the paper's "channels 11–14" are indices 0–3).
const NumChannels = 16

// IEEEChannel converts a channel index to its IEEE 802.15.4 channel number.
func IEEEChannel(idx int) int { return 11 + idx }

// ChannelIndex converts an IEEE 802.15.4 channel number (11..26) to an index.
func ChannelIndex(ieee int) int { return ieee - 11 }

// Channels returns the first n channel indices, the conventional "use n
// channels" selection in the paper's experiments.
func Channels(n int) []int {
	if n < 0 {
		n = 0
	}
	if n > NumChannels {
		n = NumChannels
	}
	chs := make([]int, n)
	for i := range chs {
		chs[i] = i
	}
	return chs
}

// Node is one field device with a 3D position inside the building.
type Node struct {
	ID    int     `json:"id"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Z     float64 `json:"z"`
	Floor int     `json:"floor"`
}

// Testbed is a set of nodes plus the measured (here: synthesized) mean link
// gain and PRR on every channel for every ordered node pair. It is the input
// the WirelessHART network manager works from.
type Testbed struct {
	Name  string
	Nodes []Node

	// gain[u*n*16 + v*16 + ch] is the mean received power in dBm at v when u
	// transmits on channel index ch at DefaultTxPowerDBm. NegInf (well below
	// the noise floor) for u==v.
	gain []float64
	// prr has the same layout and holds the interference-free PRR as it
	// would be measured by neighbor-discovery probing.
	prr []float64
}

// NumNodes returns the number of field devices.
func (tb *Testbed) NumNodes() int { return len(tb.Nodes) }

func (tb *Testbed) index(u, v, ch int) int {
	n := len(tb.Nodes)
	return (u*n+v)*NumChannels + ch
}

func (tb *Testbed) inRange(u, v, ch int) bool {
	n := len(tb.Nodes)
	return u >= 0 && u < n && v >= 0 && v < n && ch >= 0 && ch < NumChannels
}

// PRR returns the interference-free packet reception ratio of the directed
// link u→v on the given channel index, in [0,1]. Out-of-range arguments and
// u==v return 0.
func (tb *Testbed) PRR(u, v, ch int) float64 {
	if !tb.inRange(u, v, ch) || u == v {
		return 0
	}
	return tb.prr[tb.index(u, v, ch)]
}

// GainDBm returns the mean received power in dBm at v when u transmits on
// the given channel index at the default transmit power. Out-of-range
// arguments and u==v return -Inf.
func (tb *Testbed) GainDBm(u, v, ch int) float64 {
	if !tb.inRange(u, v, ch) || u == v {
		return math.Inf(-1)
	}
	return tb.gain[tb.index(u, v, ch)]
}

// CommGraph builds the communication graph G_c over the given channel
// indices: an undirected edge (u,v) exists iff PRR(u→v) ≥ prrT and
// PRR(v→u) ≥ prrT on every listed channel. It returns an error for an empty
// or invalid channel list.
func (tb *Testbed) CommGraph(channels []int, prrT float64) (*graph.Graph, error) {
	if err := tb.checkChannels(channels); err != nil {
		return nil, err
	}
	n := len(tb.Nodes)
	g := graph.New(n)
	for u := 0; u < n; u++ {
	next:
		for v := u + 1; v < n; v++ {
			for _, ch := range channels {
				if tb.PRR(u, v, ch) < prrT || tb.PRR(v, u, ch) < prrT {
					continue next
				}
			}
			if err := g.AddEdge(u, v); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// ReuseGraph builds the channel-reuse graph G_R over the given channel
// indices: an undirected edge (u,v) exists iff PRR > 0 in any direction on
// any listed channel.
func (tb *Testbed) ReuseGraph(channels []int) (*graph.Graph, error) {
	if err := tb.checkChannels(channels); err != nil {
		return nil, err
	}
	n := len(tb.Nodes)
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			for _, ch := range channels {
				if tb.PRR(u, v, ch) > 0 || tb.PRR(v, u, ch) > 0 {
					if err := g.AddEdge(u, v); err != nil {
						return nil, err
					}
					break
				}
			}
		}
	}
	return g, nil
}

func (tb *Testbed) checkChannels(channels []int) error {
	if len(channels) == 0 {
		return fmt.Errorf("testbed %s: empty channel list", tb.Name)
	}
	for _, ch := range channels {
		if ch < 0 || ch >= NumChannels {
			return fmt.Errorf("testbed %s: channel index %d out of [0,%d)", tb.Name, ch, NumChannels)
		}
	}
	return nil
}

// AccessPoints returns k access-point nodes: high-degree nodes ("nodes with
// a high number of neighbors", Sec. VII) chosen with spatial diversity —
// each subsequent AP is the highest-degree node at least minAPSeparation
// hops from every already-chosen AP, so that the wired backbone relieves
// more than one radio neighborhood. If no sufficiently separated node
// exists, the separation requirement is relaxed one hop at a time.
func AccessPoints(g *graph.Graph, k int) []int {
	n := g.Len()
	if k > n {
		k = n
	}
	hop := g.AllPairsHop()
	aps := make([]int, 0, k)
	used := make([]bool, n)
	pick := func(minSep int) int {
		best, bestDeg := -1, -1
		for id := 0; id < n; id++ {
			if used[id] {
				continue
			}
			farEnough := true
			for _, ap := range aps {
				if int(hop.Dist(id, ap)) < minSep {
					farEnough = false
					break
				}
			}
			if farEnough && g.Degree(id) > bestDeg {
				best, bestDeg = id, g.Degree(id)
			}
		}
		return best
	}
	for len(aps) < k {
		best := -1
		for sep := minAPSeparation; sep >= 0 && best < 0; sep-- {
			best = pick(sep)
		}
		if best < 0 {
			break
		}
		used[best] = true
		aps = append(aps, best)
	}
	return aps
}

// minAPSeparation is the preferred hop distance between access points.
const minAPSeparation = 3

// LinkGain adapts the testbed to the radio simulator's GainFunc.
func (tb *Testbed) LinkGain() radio.GainFunc {
	return tb.GainDBm
}

// Distance returns the 3D distance in meters between two nodes.
func (tb *Testbed) Distance(u, v int) float64 {
	a, b := tb.Nodes[u], tb.Nodes[v]
	dx, dy, dz := a.X-b.X, a.Y-b.Y, a.Z-b.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}
