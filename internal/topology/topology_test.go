package topology

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"wsan/internal/graph"
)

func genIndriya(t testing.TB) *Testbed {
	t.Helper()
	tb, err := Indriya(1)
	if err != nil {
		t.Fatalf("Indriya: %v", err)
	}
	return tb
}

func genWUSTL(t testing.TB) *Testbed {
	t.Helper()
	tb, err := WUSTL(1)
	if err != nil {
		t.Fatalf("WUSTL: %v", err)
	}
	return tb
}

func TestChannelsHelper(t *testing.T) {
	if got := Channels(4); len(got) != 4 || got[0] != 0 || got[3] != 3 {
		t.Errorf("Channels(4) = %v", got)
	}
	if got := Channels(0); len(got) != 0 {
		t.Errorf("Channels(0) = %v, want empty", got)
	}
	if got := Channels(99); len(got) != NumChannels {
		t.Errorf("Channels(99) length = %d, want %d", len(got), NumChannels)
	}
	if got := Channels(-3); len(got) != 0 {
		t.Errorf("Channels(-3) = %v, want empty", got)
	}
}

func TestIEEEChannelMapping(t *testing.T) {
	if IEEEChannel(0) != 11 || IEEEChannel(15) != 26 {
		t.Error("IEEEChannel mapping wrong")
	}
	for idx := 0; idx < NumChannels; idx++ {
		if ChannelIndex(IEEEChannel(idx)) != idx {
			t.Errorf("round trip failed for %d", idx)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Indriya(42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Indriya(42)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < a.NumNodes(); u++ {
		for v := 0; v < a.NumNodes(); v++ {
			for ch := 0; ch < NumChannels; ch++ {
				if a.PRR(u, v, ch) != b.PRR(u, v, ch) {
					t.Fatalf("same seed produced different PRR at (%d,%d,%d)", u, v, ch)
				}
			}
		}
	}
	c, err := Indriya(43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for u := 0; u < a.NumNodes() && same; u++ {
		for v := 0; v < a.NumNodes() && same; v++ {
			if a.PRR(u, v, 0) != c.PRR(u, v, 0) {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical PRR matrices")
	}
}

func TestGenerateValidation(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.NumNodes = 1
	if _, err := Generate(cfg, 1); err == nil {
		t.Error("NumNodes=1 should fail")
	}
	cfg = DefaultGenConfig()
	cfg.Floors = 0
	if _, err := Generate(cfg, 1); err == nil {
		t.Error("Floors=0 should fail")
	}
}

func TestTestbedSizes(t *testing.T) {
	if got := genIndriya(t).NumNodes(); got != 80 {
		t.Errorf("Indriya nodes = %d, want 80", got)
	}
	if got := genWUSTL(t).NumNodes(); got != 60 {
		t.Errorf("WUSTL nodes = %d, want 60", got)
	}
}

func TestNodesOnFloors(t *testing.T) {
	tb := genIndriya(t)
	floorCount := map[int]int{}
	for _, nd := range tb.Nodes {
		floorCount[nd.Floor]++
		if nd.X < 0 || nd.Y < 0 {
			t.Errorf("node %d at negative coordinate (%v,%v)", nd.ID, nd.X, nd.Y)
		}
	}
	if len(floorCount) != 3 {
		t.Fatalf("expected 3 floors, got %v", floorCount)
	}
	for f, c := range floorCount {
		if c < 25 || c > 28 {
			t.Errorf("floor %d has %d nodes, expected ~80/3", f, c)
		}
	}
}

func TestPRRBoundsAndDiagonal(t *testing.T) {
	tb := genWUSTL(t)
	n := tb.NumNodes()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			for ch := 0; ch < NumChannels; ch++ {
				p := tb.PRR(u, v, ch)
				if p < 0 || p > 1 {
					t.Fatalf("PRR(%d,%d,%d) = %v out of [0,1]", u, v, ch, p)
				}
				if u == v && p != 0 {
					t.Fatalf("self PRR must be 0, got %v", p)
				}
			}
		}
	}
}

func TestPRROutOfRange(t *testing.T) {
	tb := genWUSTL(t)
	if tb.PRR(-1, 0, 0) != 0 || tb.PRR(0, 999, 0) != 0 || tb.PRR(0, 1, 16) != 0 {
		t.Error("out-of-range PRR should be 0")
	}
	if !math.IsInf(tb.GainDBm(-1, 0, 0), -1) {
		t.Error("out-of-range GainDBm should be -Inf")
	}
}

func TestPRRMonotoneWithGain(t *testing.T) {
	// Higher gain must never give lower measured PRR (modulo quantization).
	tb := genWUSTL(t)
	type lg struct{ gain, prr float64 }
	var samples []lg
	for u := 0; u < 20; u++ {
		for v := 0; v < 20; v++ {
			if u != v {
				samples = append(samples, lg{tb.GainDBm(u, v, 0), tb.PRR(u, v, 0)})
			}
		}
	}
	for _, a := range samples {
		for _, b := range samples {
			if a.gain > b.gain+1e-9 && a.prr < b.prr-0.011 {
				t.Fatalf("gain %.1f has PRR %.2f but weaker gain %.1f has PRR %.2f",
					a.gain, a.prr, b.gain, b.prr)
			}
		}
	}
}

func TestCommGraphSubsetOfReuseGraph(t *testing.T) {
	tb := genIndriya(t)
	chs := Channels(4)
	gc, err := tb.CommGraph(chs, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := tb.ReuseGraph(chs)
	if err != nil {
		t.Fatal(err)
	}
	n := tb.NumNodes()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if gc.HasEdge(u, v) && !gr.HasEdge(u, v) {
				t.Fatalf("edge (%d,%d) in G_c but not in G_R", u, v)
			}
		}
	}
	if gc.NumEdges() >= gr.NumEdges() {
		t.Errorf("G_c (%d edges) should be strictly sparser than G_R (%d edges)",
			gc.NumEdges(), gr.NumEdges())
	}
}

func TestCommGraphMoreChannelsIsSparser(t *testing.T) {
	// Requiring reliability on more channels can only remove edges.
	tb := genIndriya(t)
	g4, err := tb.CommGraph(Channels(4), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	g8, err := tb.CommGraph(Channels(8), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if g8.NumEdges() > g4.NumEdges() {
		t.Errorf("8-channel G_c has %d edges > 4-channel %d", g8.NumEdges(), g4.NumEdges())
	}
	n := tb.NumNodes()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if g8.HasEdge(u, v) && !g4.HasEdge(u, v) {
				t.Fatalf("edge (%d,%d) in 8-ch graph but not 4-ch graph", u, v)
			}
		}
	}
}

func TestGraphChannelValidation(t *testing.T) {
	tb := genWUSTL(t)
	if _, err := tb.CommGraph(nil, 0.9); err == nil {
		t.Error("empty channel list should fail")
	}
	if _, err := tb.CommGraph([]int{16}, 0.9); err == nil {
		t.Error("channel 16 should fail")
	}
	if _, err := tb.ReuseGraph([]int{-1}); err == nil {
		t.Error("channel -1 should fail")
	}
}

// The generated testbeds must support the paper's workloads: a connected,
// multi-hop communication graph on the 4 "good" channels.
func TestTestbedsUsableForScheduling(t *testing.T) {
	for _, tc := range []struct {
		name string
		tb   *Testbed
	}{
		{"indriya", genIndriya(t)},
		{"wustl", genWUSTL(t)},
	} {
		gc, err := tc.tb.CommGraph(Channels(4), 0.9)
		if err != nil {
			t.Fatal(err)
		}
		lc := gc.LargestComponent()
		if frac := float64(len(lc)) / float64(tc.tb.NumNodes()); frac < 0.8 {
			t.Errorf("%s: largest G_c component covers only %.0f%% of nodes", tc.name, frac*100)
		}
		sub := gc.AllPairsHop()
		diam := sub.Diameter()
		if diam < 3 {
			t.Errorf("%s: G_c diameter = %d, want a multi-hop network (≥3)", tc.name, diam)
		}
		gr, err := tc.tb.ReuseGraph(Channels(4))
		if err != nil {
			t.Fatal(err)
		}
		lambdaR := gr.AllPairsHop().Diameter()
		if lambdaR < 2 {
			t.Errorf("%s: G_R diameter = %d, reuse needs ≥2", tc.name, lambdaR)
		}
		t.Logf("%s: Gc edges=%d diam=%d largestComp=%d | GR edges=%d λ_R=%d",
			tc.name, gc.NumEdges(), diam, len(lc), gr.NumEdges(), lambdaR)
	}
}

func TestAccessPoints(t *testing.T) {
	tb := genIndriya(t)
	gc, err := tb.CommGraph(Channels(4), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	aps := AccessPoints(gc, 2)
	if len(aps) != 2 {
		t.Fatalf("got %d APs, want 2", len(aps))
	}
	if aps[0] == aps[1] {
		t.Error("APs must be distinct")
	}
	// The first AP must have the globally maximal degree.
	for i := 0; i < gc.Len(); i++ {
		if gc.Degree(i) > gc.Degree(aps[0]) {
			t.Errorf("node %d has degree %d > AP degree %d", i, gc.Degree(i), gc.Degree(aps[0]))
		}
	}
}

func TestAccessPointsKTooLarge(t *testing.T) {
	g := graph.New(3)
	if got := AccessPoints(g, 10); len(got) != 3 {
		t.Errorf("AccessPoints k>n returned %d, want 3", len(got))
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tb := genWUSTL(t)
	var buf bytes.Buffer
	if err := tb.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Name != tb.Name || got.NumNodes() != tb.NumNodes() {
		t.Fatalf("metadata mismatch: %s/%d vs %s/%d", got.Name, got.NumNodes(), tb.Name, tb.NumNodes())
	}
	n := tb.NumNodes()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			for ch := 0; ch < NumChannels; ch++ {
				if got.PRR(u, v, ch) != tb.PRR(u, v, ch) {
					t.Fatalf("PRR mismatch at (%d,%d,%d)", u, v, ch)
				}
			}
		}
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	if _, err := Decode(bytes.NewBufferString("{")); err == nil {
		t.Error("truncated JSON should fail")
	}
	if _, err := Decode(bytes.NewBufferString(`{"name":"x","nodes":[]}`)); err == nil {
		t.Error("empty node list should fail")
	}
	bad := `{"name":"x","nodes":[{"id":0},{"id":1}],"links":[{"from":0,"to":9}]}`
	if _, err := Decode(bytes.NewBufferString(bad)); err == nil {
		t.Error("out-of-range link should fail")
	}
}

// Property: PRR asymmetry exists but is bounded — the generator uses shared
// shadowing with small per-node offsets.
func TestAsymmetryBounded(t *testing.T) {
	tb := genIndriya(t)
	asym := 0
	links := 0
	n := tb.NumNodes()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p1, p2 := tb.PRR(u, v, 0), tb.PRR(v, u, 0)
			if p1 > 0 || p2 > 0 {
				links++
				if math.Abs(p1-p2) > 0.05 {
					asym++
				}
			}
		}
	}
	if links == 0 {
		t.Fatal("no links at all")
	}
	frac := float64(asym) / float64(links)
	if frac == 0 {
		t.Error("expected some asymmetric links (per-node offsets)")
	}
	if frac > 0.8 {
		t.Errorf("too many asymmetric links: %.0f%%", frac*100)
	}
}

func TestQuickGenerateAlwaysValid(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.NumNodes = 12
	prop := func(seed int64) bool {
		tb, err := Generate(cfg, seed)
		if err != nil {
			return false
		}
		for u := 0; u < 12; u++ {
			for v := 0; v < 12; v++ {
				p := tb.PRR(u, v, 3)
				if p < 0 || p > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGenerateIndriya(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Indriya(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestLinkGainAdapter(t *testing.T) {
	tb := genWUSTL(t)
	gain := tb.LinkGain()
	if gain(0, 1, 0) != tb.GainDBm(0, 1, 0) {
		t.Error("LinkGain must delegate to GainDBm")
	}
}

func TestPlacementVariants(t *testing.T) {
	base := DefaultGenConfig()
	base.NumNodes = 30
	for _, tc := range []struct {
		name      string
		placement Placement
	}{
		{"grid", PlacementGrid},
		{"corridor", PlacementCorridor},
		{"uniform", PlacementUniform},
	} {
		cfg := base
		cfg.Placement = tc.placement
		tb, err := Generate(cfg, 5)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if tb.NumNodes() != 30 {
			t.Fatalf("%s: %d nodes", tc.name, tb.NumNodes())
		}
		for _, nd := range tb.Nodes {
			if nd.X < -cfg.FloorWidthM*0.3 || nd.X > cfg.FloorWidthM*1.3 ||
				nd.Y < -2 || nd.Y > cfg.FloorDepthM+2 {
				t.Errorf("%s: node %d outside the floor: (%v, %v)", tc.name, nd.ID, nd.X, nd.Y)
			}
		}
	}
	// Corridor layout concentrates Y coordinates on two lines.
	cfg := base
	cfg.Placement = PlacementCorridor
	tb, err := Generate(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[int]int{}
	for _, nd := range tb.Nodes {
		distinct[int(nd.Y/5)]++
	}
	if len(distinct) > 4 {
		t.Errorf("corridor placement spread across %d Y-bands, want ≤4", len(distinct))
	}
}
