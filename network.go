package wsan

import (
	"fmt"
	"math/rand"

	"wsan/internal/budget"
	"wsan/internal/flow"
	"wsan/internal/graph"
	"wsan/internal/netsim"
	"wsan/internal/routing"
	"wsan/internal/scheduler"
	"wsan/internal/topology"
)

// Network is the high-level entry point: a testbed operated on a fixed set
// of channels, with the communication and channel-reuse graphs the network
// manager derives from the link statistics.
//
// # Goroutine safety
//
// A Network is immutable after construction, so a single instance is safe
// for concurrent use by any number of goroutines: GenerateWorkload, Route,
// Schedule, AddFlow, Compact, and every accessor only read the derived
// graphs (each call owns its private RNG and schedule state). This is the
// access pattern of the network-manager daemon (internal/server), which
// runs scheduling and simulation jobs for one hosted network concurrently
// on a worker pool. The caveats are the arguments, not the Network: a
// *ScheduleResult, the flow slice it was built from, and a SimConfig are
// NOT safe to share between concurrent calls that mutate them (AddFlow,
// Compact, Repair, Manage, and the simulator's statistics collection) —
// give each goroutine its own copies (CloneSchedule, or decode fresh
// instances from JSON as the daemon does).
type Network struct {
	tb       *topology.Testbed
	channels []int
	gc       *graph.Graph
	gr       *graph.Graph
	hop      *graph.HopMatrix
	aps      []int
	prrT     float64
}

// NetworkOption customizes NewNetwork.
type NetworkOption func(*networkOptions)

type networkOptions struct {
	prrT   float64
	numAPs int
}

// WithPRRThreshold overrides the link-selection threshold PRR_t
// (default 0.9).
func WithPRRThreshold(t float64) NetworkOption {
	return func(o *networkOptions) { o.prrT = t }
}

// WithAccessPoints overrides how many access points are selected
// (default 2).
func WithAccessPoints(n int) NetworkOption {
	return func(o *networkOptions) { o.numAPs = n }
}

// NewNetwork derives the operating graphs for a testbed on the first
// numChannels channels (the paper's convention; use NewNetworkOnChannels for
// an explicit channel list).
func NewNetwork(tb *Testbed, numChannels int, opts ...NetworkOption) (*Network, error) {
	return NewNetworkOnChannels(tb, topology.Channels(numChannels), opts...)
}

// NewNetworkOnChannels derives the operating graphs for a testbed on an
// explicit list of channel indices (supporting blacklists: pass the
// non-blacklisted channels).
func NewNetworkOnChannels(tb *Testbed, channels []int, opts ...NetworkOption) (*Network, error) {
	if tb == nil {
		return nil, fmt.Errorf("wsan: nil testbed")
	}
	o := networkOptions{prrT: 0.9, numAPs: 2}
	for _, opt := range opts {
		opt(&o)
	}
	gc, err := tb.CommGraph(channels, o.prrT)
	if err != nil {
		return nil, wrapErr(err)
	}
	gr, err := tb.ReuseGraph(channels)
	if err != nil {
		return nil, wrapErr(err)
	}
	return &Network{
		tb:       tb,
		channels: append([]int(nil), channels...),
		gc:       gc,
		gr:       gr,
		hop:      gr.AllPairsHop(),
		aps:      topology.AccessPoints(gc, o.numAPs),
		prrT:     o.prrT,
	}, nil
}

// Testbed returns the underlying testbed.
func (n *Network) Testbed() *Testbed { return n.tb }

// Channels returns the channel indices in use (copy).
func (n *Network) Channels() []int { return append([]int(nil), n.channels...) }

// AccessPoints returns the selected access-point node IDs (copy).
func (n *Network) AccessPoints() []int { return append([]int(nil), n.aps...) }

// ReuseDiameter returns λ_R, the diameter of the channel-reuse graph.
func (n *Network) ReuseDiameter() int { return n.hop.Diameter() }

// CommEdges returns the number of communication-graph links.
func (n *Network) CommEdges() int { return n.gc.NumEdges() }

// CutVertices returns the communication graph's articulation points — relay
// nodes whose failure would partition the network. Deployment reviews flag
// these for redundancy (a second radio, a wired AP, or a repeater).
func (n *Network) CutVertices() []int { return n.gc.ArticulationPoints() }

// WorkloadConfig parameterizes GenerateWorkload.
type WorkloadConfig struct {
	// NumFlows is the number of flows.
	NumFlows int
	// MinPeriodExp and MaxPeriodExp bound the harmonic period range
	// P = [2^min, 2^max] seconds.
	MinPeriodExp int
	MaxPeriodExp int
	// Traffic selects centralized or peer-to-peer routing.
	Traffic Traffic
	// Seed drives the random draw.
	Seed int64
}

// GenerateWorkload draws a random flow set (sources and destinations from
// the largest communication-graph component, excluding access points),
// assigns Deadline-Monotonic priorities, and routes every flow.
func (n *Network) GenerateWorkload(cfg WorkloadConfig) ([]*Flow, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	fs, err := flow.Generate(rng, n.gc, flow.GenConfig{
		NumFlows:     cfg.NumFlows,
		MinPeriodExp: cfg.MinPeriodExp,
		MaxPeriodExp: cfg.MaxPeriodExp,
		Exclude:      n.aps,
	})
	if err != nil {
		return nil, wrapErr(err)
	}
	if err := n.Route(fs, cfg.Traffic); err != nil {
		return nil, err
	}
	return fs, nil
}

// Route assigns source routes to user-constructed flows.
func (n *Network) Route(flows []*Flow, traffic Traffic) error {
	err := routing.Assign(flows, n.gc, routing.Config{Traffic: traffic, APs: n.aps})
	if err != nil {
		return wrapErr(err)
	}
	return nil
}

// ScheduleConfig tunes Schedule.
type ScheduleConfig struct {
	// RhoT is the minimum channel-reuse hop distance (default 2). Ignored
	// by NR.
	RhoT int
	// Retransmit reserves a retransmission slot per hop (default true, the
	// WirelessHART source-routing convention). Set DisableRetransmit to turn
	// it off.
	DisableRetransmit bool
	// Metrics, when non-nil, receives the scheduler's "scheduler.<alg>.*"
	// counters when the run completes. Nil disables collection.
	Metrics MetricsSink
}

// Schedule runs the selected algorithm over the flow set (which must be in
// priority order, as produced by GenerateWorkload or flow.AssignDM).
func (n *Network) Schedule(flows []*Flow, alg Algorithm, cfg ScheduleConfig) (*ScheduleResult, error) {
	if cfg.RhoT == 0 {
		cfg.RhoT = 2
	}
	res, err := scheduler.Run(flows, scheduler.Config{
		Algorithm:   alg,
		NumChannels: len(n.channels),
		RhoT:        cfg.RhoT,
		HopGR:       n.hop,
		Retransmit:  !cfg.DisableRetransmit,
		Metrics:     cfg.Metrics,
	})
	if err != nil {
		return nil, wrapErr(err)
	}
	return res, nil
}

// AddFlow admits one new flow into an existing schedule without disturbing
// the scheduled transmissions (the incremental update a network manager
// performs when a control loop joins a running network). The new flow must
// be lowest-priority (highest ID) and its period must divide the slotframe.
// On a deadline miss the schedule is left unchanged and Schedulable is
// false.
func (n *Network) AddFlow(res *ScheduleResult, f *Flow, alg Algorithm, cfg ScheduleConfig) (*ScheduleResult, error) {
	if cfg.RhoT == 0 {
		cfg.RhoT = 2
	}
	out, err := scheduler.AddFlow(res.Schedule, f, scheduler.Config{
		Algorithm:   alg,
		NumChannels: len(n.channels),
		RhoT:        cfg.RhoT,
		HopGR:       n.hop,
		Retransmit:  !cfg.DisableRetransmit,
		Metrics:     cfg.Metrics,
	})
	if err != nil {
		return nil, wrapErr(err)
	}
	return out, nil
}

// DeltaResult describes the outcome of one incremental scheduling
// operation (AddFlowDelta, RemoveFlowDelta, RerouteFlowDelta): the net
// schedule changes, which repair rung produced them, and the work the
// operation performed.
type DeltaResult = scheduler.DeltaResult

// DeltaFallback names the repair rung an incremental operation descended to.
type DeltaFallback = scheduler.Fallback

// Delta-scheduler repair rungs, mildest first.
const (
	// DeltaFallbackNone: the delta placed directly against the pinned grid.
	DeltaFallbackNone = scheduler.FallbackNone
	// DeltaFallbackEvict: lower-criticality colliding flows were evicted and
	// re-placed to make room.
	DeltaFallbackEvict = scheduler.FallbackEvict
	// DeltaFallbackCascade: evictions cascaded within a bounded budget while
	// re-placing, before any full reschedule.
	DeltaFallbackCascade = scheduler.FallbackCascade
	// DeltaFallbackFull: the mutated workload was rescheduled from scratch.
	DeltaFallbackFull = scheduler.FallbackFull
)

// deltaConfig assembles the scheduler configuration for a delta operation.
func (n *Network) deltaConfig(alg Algorithm, cfg ScheduleConfig) scheduler.Config {
	if cfg.RhoT == 0 {
		cfg.RhoT = 2
	}
	return scheduler.Config{
		Algorithm:   alg,
		NumChannels: len(n.channels),
		RhoT:        cfg.RhoT,
		HopGR:       n.hop,
		Retransmit:  !cfg.DisableRetransmit,
		Metrics:     cfg.Metrics,
	}
}

// AddFlowDelta admits one new flow of any priority into an existing
// schedule, pinning every already-scheduled transmission and placing only
// the new flow's. On a collision the delta scheduler descends its repair
// ladder (evict lower-criticality flows, then reschedule the mutated
// workload from scratch) before declaring the admission infeasible; an
// infeasible admission leaves the schedule untouched. flows is the workload
// the schedule was built from, NOT including f.
func (n *Network) AddFlowDelta(res *ScheduleResult, flows []*Flow, f *Flow, alg Algorithm, cfg ScheduleConfig) (*DeltaResult, error) {
	out, err := scheduler.AddFlowDelta(res.Schedule, flows, f, n.deltaConfig(alg, cfg))
	if err != nil {
		return nil, wrapErr(err)
	}
	return out, nil
}

// RemoveFlowDelta retires one flow from an existing schedule, deleting
// exactly its transmissions. Removal cannot fail for capacity reasons; the
// result's Changes invert cleanly via InvertDeltas for rollback.
func (n *Network) RemoveFlowDelta(res *ScheduleResult, flowID int, metrics MetricsSink) (*DeltaResult, error) {
	out, err := scheduler.RemoveFlowDelta(res.Schedule, flowID, metrics)
	if err != nil {
		return nil, wrapErr(err)
	}
	return out, nil
}

// RerouteFlowDelta moves one scheduled flow onto a new route, re-placing
// only that flow's transmissions (with the same repair ladder as
// AddFlowDelta behind it). The flow itself is not mutated: on success the
// caller assigns newRoute to the flow; on infeasibility the schedule is
// rolled back and the old placements stand.
func (n *Network) RerouteFlowDelta(res *ScheduleResult, flows []*Flow, flowID int, newRoute []Link, alg Algorithm, cfg ScheduleConfig) (*DeltaResult, error) {
	out, err := scheduler.RerouteFlowDelta(res.Schedule, flows, flowID, newRoute, n.deltaConfig(alg, cfg))
	if err != nil {
		return nil, wrapErr(err)
	}
	return out, nil
}

// RouteAvoiding returns a minimum-hop route from src to dst over the
// communication graph with the avoid nodes deleted — the detour a reroute
// delta places a flow onto. It returns an error when no such path exists.
func (n *Network) RouteAvoiding(src, dst int, avoid []int) ([]Link, error) {
	g := n.gc
	if len(avoid) > 0 {
		down := make(map[int]bool, len(avoid))
		for _, v := range avoid {
			down[v] = true
		}
		sub := graph.New(n.gc.Len())
		for u := 0; u < n.gc.Len(); u++ {
			if down[u] {
				continue
			}
			for _, v := range n.gc.Neighbors(u) {
				if down[int(v)] {
					continue
				}
				if err := sub.AddEdge(u, int(v)); err != nil {
					return nil, wrapErr(err)
				}
			}
		}
		g = sub
	}
	if src < 0 || src >= g.Len() || dst < 0 || dst >= g.Len() {
		return nil, fmt.Errorf("wsan: route endpoints (%d,%d) out of range [0,%d)", src, dst, g.Len())
	}
	path := g.ShortestPathHop(src, dst)
	if path == nil {
		return nil, fmt.Errorf("wsan: no route from %d to %d avoiding %v", src, dst, avoid)
	}
	route := make([]Link, len(path)-1)
	for i := range route {
		route[i] = Link{From: path[i], To: path[i+1]}
	}
	return route, nil
}

// LinkPRR returns the survey packet reception ratio of a directed link,
// averaged over the network's hopping list — the planning-time estimate
// reliability budgets and bounds are computed from. Links outside the
// testbed return 0.
func (n *Network) LinkPRR(l Link) float64 {
	if len(n.channels) == 0 {
		return 0
	}
	sum := 0.0
	for _, ch := range n.channels {
		sum += n.tb.PRR(l.From, l.To, ch)
	}
	return sum / float64(len(n.channels))
}

// ApplyReliabilityTargets enables reliability-target scheduling for a
// routed flow set: every flow gets TargetPDR = target (when target > 0;
// pass 0 to keep per-flow targets already set), and each targeted flow's
// per-hop retransmission budget (Flow.TxBudget) is planned from the
// network's survey link PRRs so the end-to-end delivery-probability bound
// meets the target with the fewest total slots. maxPerHop caps the per-hop
// attempts (0 selects the default cap of 4). Flows whose target is
// unreachable even at the cap keep the capped best-effort budget and are
// reported infeasible in their Assignment. Call before Schedule: the
// schedulers place TxBudget multiplicities through their ordinary
// machinery.
func (n *Network) ApplyReliabilityTargets(flows []*Flow, target float64, maxPerHop int, mets MetricsSink) ([]BudgetAssignment, error) {
	if target > 0 {
		for _, f := range flows {
			f.TargetPDR = target
		}
	}
	out, err := budget.Apply(flows, n.LinkPRR, maxPerHop, mets)
	if err != nil {
		return nil, wrapErr(err)
	}
	return out, nil
}

// ReliabilityBounds computes every flow's end-to-end delivery-probability
// bound from the network's survey link PRRs (see the package-level
// ReliabilityBounds for an explicit PRR source). attempts is the uniform
// per-hop slot count for flows without a TxBudget; 0 selects the
// WirelessHART default of 2.
func (n *Network) ReliabilityBounds(flows []*Flow, attempts int) ([]ReliabilityBound, error) {
	return ReliabilityBounds(flows, n.LinkPRR, attempts)
}

// NewSimConfig pre-fills a simulator configuration for a scheduled
// workload on this network; the caller can tweak fading, interferers, and
// statistics collection before calling Simulate.
func (n *Network) NewSimConfig(flows []*Flow, res *ScheduleResult, hyperperiods int, seed int64) SimConfig {
	return netsim.Config{
		Testbed:            n.tb,
		Flows:              flows,
		Schedule:           res.Schedule,
		Channels:           n.Channels(),
		Hyperperiods:       hyperperiods,
		FadingSigmaDB:      2.5,
		SurveyDriftSigmaDB: 2.5,
		Retransmit:         true,
		Seed:               seed,
	}
}
