package wsan_test

import (
	"bytes"
	"testing"

	"wsan"
)

func testNetwork(t *testing.T) (*wsan.Testbed, *wsan.Network) {
	t.Helper()
	tb, err := wsan.GenerateWUSTL(1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := wsan.NewNetwork(tb, 4)
	if err != nil {
		t.Fatal(err)
	}
	return tb, net
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := wsan.NewNetwork(nil, 4); err == nil {
		t.Error("nil testbed should fail")
	}
	tb, err := wsan.GenerateWUSTL(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wsan.NewNetwork(tb, 0); err == nil {
		t.Error("zero channels should fail")
	}
	if _, err := wsan.NewNetworkOnChannels(tb, []int{99}); err == nil {
		t.Error("bad channel index should fail")
	}
}

func TestNetworkAccessors(t *testing.T) {
	tb, net := testNetwork(t)
	if net.Testbed() != tb {
		t.Error("Testbed() should return the wrapped testbed")
	}
	chs := net.Channels()
	if len(chs) != 4 {
		t.Fatalf("Channels() = %v, want 4 entries", chs)
	}
	chs[0] = 99 // the returned slice must be a copy
	if net.Channels()[0] == 99 {
		t.Error("Channels() leaked internal state")
	}
	if got := len(net.AccessPoints()); got != 2 {
		t.Errorf("AccessPoints() returned %d, want 2", got)
	}
	if net.ReuseDiameter() < 2 {
		t.Errorf("ReuseDiameter = %d, want ≥ 2", net.ReuseDiameter())
	}
	if net.CommEdges() == 0 {
		t.Error("CommEdges = 0")
	}
}

func TestNetworkOptions(t *testing.T) {
	tb, err := wsan.GenerateWUSTL(1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := wsan.NewNetwork(tb, 4, wsan.WithAccessPoints(3), wsan.WithPRRThreshold(0.8))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(net.AccessPoints()); got != 3 {
		t.Errorf("got %d APs, want 3", got)
	}
	strict, err := wsan.NewNetwork(tb, 4, wsan.WithPRRThreshold(0.99))
	if err != nil {
		t.Fatal(err)
	}
	if strict.CommEdges() >= net.CommEdges() {
		t.Errorf("stricter PRR threshold should remove links: %d >= %d",
			strict.CommEdges(), net.CommEdges())
	}
}

func TestFullPipeline(t *testing.T) {
	_, net := testNetwork(t)
	flows, err := net.GenerateWorkload(wsan.WorkloadConfig{
		NumFlows:     20,
		MinPeriodExp: 0,
		MaxPeriodExp: 1,
		Traffic:      wsan.PeerToPeer,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 20 {
		t.Fatalf("got %d flows", len(flows))
	}
	for _, alg := range []wsan.Algorithm{wsan.NR, wsan.RA, wsan.RC} {
		res, err := net.Schedule(flows, alg, wsan.ScheduleConfig{})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !res.Schedulable {
			t.Fatalf("%v: light workload should be schedulable", alg)
		}
		sim, err := wsan.Simulate(net.NewSimConfig(flows, res, 20, 5))
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		fn, err := wsan.Summary(sim.PDRs())
		if err != nil {
			t.Fatal(err)
		}
		if fn.Median < 0.95 {
			t.Errorf("%v: median PDR %v too low on a clean network", alg, fn.Median)
		}
	}
}

func TestCentralizedPipeline(t *testing.T) {
	_, net := testNetwork(t)
	flows, err := net.GenerateWorkload(wsan.WorkloadConfig{
		NumFlows:     10,
		MinPeriodExp: 1,
		MaxPeriodExp: 2,
		Traffic:      wsan.Centralized,
		Seed:         4,
	})
	if err != nil {
		t.Fatal(err)
	}
	aps := net.AccessPoints()
	for _, f := range flows {
		throughAP := false
		for _, l := range f.Route {
			for _, ap := range aps {
				if l.To == ap || l.From == ap {
					throughAP = true
				}
			}
		}
		if !throughAP {
			t.Errorf("centralized flow %d does not pass an access point: %v", f.ID, f.Route)
		}
	}
}

func TestDetectionPipeline(t *testing.T) {
	_, net := testNetwork(t)
	flows, err := net.GenerateWorkload(wsan.WorkloadConfig{
		NumFlows:     40,
		MinPeriodExp: 0,
		MaxPeriodExp: 0,
		Traffic:      wsan.PeerToPeer,
		Seed:         6,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Schedule(flows, wsan.RA, wsan.ScheduleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Skip("workload not schedulable with this seed")
	}
	cfg := net.NewSimConfig(flows, res, 200, 7)
	cfg.EpochSlots = 10_000
	cfg.SampleWindowSlots = 1_000
	cfg.ProbeEverySlots = 200
	sim, err := wsan.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reports := wsan.DetectDegradation(sim, wsan.DefaultDetectionConfig())
	// The schedule has reuse links, so there must be reports, and they must
	// only cover reuse-condition traffic.
	if len(res.Schedule.ReusedLinks()) > 0 && len(reports) == 0 {
		t.Error("expected detection reports for a reused schedule")
	}
	for _, r := range reports {
		if r.ReusePRR < 0 {
			t.Errorf("report for %v has no reuse traffic", r.Link)
		}
	}
}

func TestSaveLoadTestbed(t *testing.T) {
	tb, _ := testNetwork(t)
	var buf bytes.Buffer
	if err := wsan.SaveTestbed(tb, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := wsan.LoadTestbed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != tb.NumNodes() {
		t.Errorf("round trip lost nodes: %d vs %d", got.NumNodes(), tb.NumNodes())
	}
	// A loaded testbed must still support network construction.
	if _, err := wsan.NewNetwork(got, 4); err != nil {
		t.Errorf("loaded testbed unusable: %v", err)
	}
}

func TestCustomTestbed(t *testing.T) {
	nodes := []wsan.Node{{ID: 0}, {ID: 1}, {ID: 2}}
	tb, err := wsan.CustomTestbed("tiny", nodes, func(u, v, ch int) float64 {
		return -60
	})
	if err != nil {
		t.Fatal(err)
	}
	net, err := wsan.NewNetwork(tb, 2)
	if err != nil {
		t.Fatal(err)
	}
	if net.CommEdges() != 3 {
		t.Errorf("complete 3-node graph expected, got %d edges", net.CommEdges())
	}
}

func TestKSTestExported(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	res, err := wsan.KSTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.D != 0 {
		t.Errorf("D = %v, want 0", res.D)
	}
}

func TestFacadeGenerators(t *testing.T) {
	ind, err := wsan.GenerateIndriya(2)
	if err != nil {
		t.Fatal(err)
	}
	if ind.NumNodes() != 80 {
		t.Errorf("Indriya nodes = %d", ind.NumNodes())
	}
	cfg := wsan.DefaultTestbedConfig()
	cfg.NumNodes = 12
	cfg.Floors = 1
	custom, err := wsan.GenerateTestbed(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if custom.NumNodes() != 12 {
		t.Errorf("custom nodes = %d", custom.NumNodes())
	}
}

func TestFacadeAnalysis(t *testing.T) {
	_, net := testNetwork(t)
	flows, err := net.GenerateWorkload(wsan.WorkloadConfig{
		NumFlows: 8, MinPeriodExp: 0, MaxPeriodExp: 1,
		Traffic: wsan.PeerToPeer, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	util, err := wsan.AnalyzeUtilization(flows, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if util.Channel <= 0 || util.BottleneckNode <= 0 {
		t.Errorf("utilization = %+v", util)
	}
	bounds, err := wsan.DelayBounds(flows, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) != len(flows) {
		t.Fatalf("bounds = %d", len(bounds))
	}
	res, err := net.Schedule(flows, wsan.RC, wsan.ScheduleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Skip("workload unschedulable with this seed")
	}
	lats, err := wsan.ScheduleLatencies(flows, res)
	if err != nil {
		t.Fatal(err)
	}
	// The delay bound must dominate the realized latency for every flow
	// the analysis admitted (soundness through the public API).
	byID := make(map[int]wsan.FlowLatency, len(lats))
	for _, l := range lats {
		byID[l.FlowID] = l
	}
	for _, b := range bounds {
		if !b.Schedulable {
			continue
		}
		if l, ok := byID[b.FlowID]; ok && l.WorstSlots > b.ResponseSlots {
			t.Errorf("flow %d: realized %d slots exceeds bound %d",
				b.FlowID, l.WorstSlots, b.ResponseSlots)
		}
	}
}

func TestFacadeRepairLoop(t *testing.T) {
	_, net := testNetwork(t)
	flows, err := net.GenerateWorkload(wsan.WorkloadConfig{
		NumFlows: 40, MinPeriodExp: 0, MaxPeriodExp: 0,
		Traffic: wsan.PeerToPeer, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Schedule(flows, wsan.RA, wsan.ScheduleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Skip("workload unschedulable with this seed")
	}
	cfg := net.NewSimConfig(flows, res, 100, 7)
	cfg.EpochSlots = 5_000
	cfg.SampleWindowSlots = 500
	cfg.ProbeEverySlots = 200
	sim, err := wsan.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reports := wsan.DetectDegradation(sim, wsan.DefaultDetectionConfig())
	rep, err := wsan.Repair(res, flows, reports)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Moved > 0 {
		// Post-repair schedule must stay structurally valid (no reuse
		// constraint check here: repair only creates exclusive cells).
		for k := range res.Schedule.TxPerChannelHist() {
			if k < 1 {
				t.Errorf("impossible cell size %d", k)
			}
		}
	}
}

func TestNetworkAddFlow(t *testing.T) {
	_, net := testNetwork(t)
	flows, err := net.GenerateWorkload(wsan.WorkloadConfig{
		NumFlows: 10, MinPeriodExp: 0, MaxPeriodExp: 1,
		Traffic: wsan.PeerToPeer, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Schedule(flows, wsan.RC, wsan.ScheduleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Skip("base workload unschedulable with this seed")
	}
	// A new flow between two non-AP nodes, lowest priority, harmonic period.
	extra, err := net.GenerateWorkload(wsan.WorkloadConfig{
		NumFlows: 1, MinPeriodExp: 1, MaxPeriodExp: 1,
		Traffic: wsan.PeerToPeer, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	nf := extra[0]
	nf.ID = len(flows)
	nf.Deadline = nf.Period
	before := res.Schedule.Len()
	out, err := net.AddFlow(res, nf, wsan.RC, wsan.ScheduleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Schedulable {
		t.Fatal("incremental add should succeed on a light schedule")
	}
	if res.Schedule.Len() <= before {
		t.Error("no transmissions added")
	}
}

func TestCutVertices(t *testing.T) {
	// A 4-node line testbed: interior nodes are cut vertices.
	nodes := []wsan.Node{{ID: 0, X: 0}, {ID: 1, X: 20}, {ID: 2, X: 40}, {ID: 3, X: 60}}
	tb, err := wsan.CustomTestbed("line", nodes, func(u, v, ch int) float64 {
		if u-v == 1 || v-u == 1 {
			return -60
		}
		return -150
	})
	if err != nil {
		t.Fatal(err)
	}
	net, err := wsan.NewNetwork(tb, 2)
	if err != nil {
		t.Fatal(err)
	}
	cuts := net.CutVertices()
	if len(cuts) != 2 || cuts[0] != 1 || cuts[1] != 2 {
		t.Errorf("cut vertices = %v, want [1 2]", cuts)
	}
}

func TestEnergyFacade(t *testing.T) {
	em := wsan.DefaultEnergyModel()
	if em.TxFrameMJ <= 0 || em.RxFrameMJ <= 0 || em.IdleListenMJ <= 0 {
		t.Errorf("default energy model has non-positive costs: %+v", em)
	}
	if y := wsan.LifetimeYears(0.5, 100, 20_000); y <= 1 || y >= 2 {
		t.Errorf("LifetimeYears = %v, want ≈1.27", y)
	}
}

func TestManageFacade(t *testing.T) {
	_, net := testNetwork(t)
	flows, err := net.GenerateWorkload(wsan.WorkloadConfig{
		NumFlows: 30, MinPeriodExp: 0, MaxPeriodExp: 0,
		Traffic: wsan.PeerToPeer, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Schedule(flows, wsan.RA, wsan.ScheduleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Skip("workload unschedulable with this seed")
	}
	iters, err := wsan.Manage(wsan.ManageConfig{
		Testbed:            net.Testbed(),
		Flows:              flows,
		Schedule:           res.Schedule,
		Channels:           net.Channels(),
		EpochSlots:         5_000,
		SampleWindowSlots:  500,
		ProbeEverySlots:    200,
		FadingSigmaDB:      2.5,
		SurveyDriftSigmaDB: 2.5,
		MaxIterations:      3,
		Seed:               2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) == 0 {
		t.Fatal("no iterations ran")
	}
}

func TestCompactFacade(t *testing.T) {
	_, net := testNetwork(t)
	flows, err := net.GenerateWorkload(wsan.WorkloadConfig{
		NumFlows: 15, MinPeriodExp: 0, MaxPeriodExp: 1,
		Traffic: wsan.PeerToPeer, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Schedule(flows, wsan.RC, wsan.ScheduleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Skip("unschedulable draw")
	}
	// An earliest-slot schedule is already compact: nothing should move.
	moved, err := net.Compact(res, flows)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Errorf("fresh earliest-slot schedule moved %d transmissions", moved)
	}
}

func TestDiffSchedulesFacade(t *testing.T) {
	_, net := testNetwork(t)
	flows, err := net.GenerateWorkload(wsan.WorkloadConfig{
		NumFlows: 20, MinPeriodExp: 0, MaxPeriodExp: 0,
		Traffic: wsan.PeerToPeer, Seed: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Schedule(flows, wsan.RA, wsan.ScheduleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Skip("unschedulable draw")
	}
	before := wsan.CloneSchedule(res)
	// Repair every reused link to force some movement.
	var reports []wsan.DetectionReport
	for l := range res.Schedule.ReusedLinks() {
		reports = append(reports, wsan.DetectionReport{
			Link:    wsan.Link{From: l[0], To: l[1]},
			Verdict: wsan.VerdictReuseDegraded,
		})
	}
	rep, err := wsan.Repair(res, flows, reports)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := wsan.DiffSchedules(before, res)
	if err != nil {
		t.Fatal(err)
	}
	// Each genuinely relocated transmission contributes one removal and one
	// addition; a victim re-placed into its original cell (after its
	// cellmate moved away) counts as moved but produces no delta.
	if len(delta)%2 != 0 {
		t.Errorf("delta entries = %d, want an even count", len(delta))
	}
	if len(delta) > 2*rep.Moved {
		t.Errorf("delta entries = %d exceed 2×%d moved", len(delta), rep.Moved)
	}
	if rep.Moved > 0 && len(delta) == 0 {
		t.Log("all moves returned to original cells (rare but legal)")
	}
}

func TestSimulateConvergedFacade(t *testing.T) {
	_, net := testNetwork(t)
	flows, err := net.GenerateWorkload(wsan.WorkloadConfig{
		NumFlows: 10, MinPeriodExp: 0, MaxPeriodExp: 1,
		Traffic: wsan.PeerToPeer, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Schedule(flows, wsan.RC, wsan.ScheduleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Skip("unschedulable draw")
	}
	out, err := wsan.SimulateConverged(net.NewSimConfig(flows, res, 0, 3), wsan.ConvergeOpts{
		ChunkHyperperiods: 20, MaxChunks: 30, HalfWidth: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Chunks == 0 {
		t.Fatal("no chunks ran")
	}
	if out.Converged && out.WorstHalfWidth > 0.05 {
		t.Errorf("converged above target: %+v", out)
	}
}
