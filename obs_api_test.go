package wsan_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"wsan"
)

// metricsWorkload builds a small schedulable workload for counter tests.
func metricsWorkload(t *testing.T) (*wsan.Network, []*wsan.Flow) {
	t.Helper()
	_, net := testNetwork(t)
	flows, err := net.GenerateWorkload(wsan.WorkloadConfig{
		NumFlows: 10, MinPeriodExp: 0, MaxPeriodExp: 1,
		Traffic: wsan.PeerToPeer, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net, flows
}

func TestSchedulerMetricsExact(t *testing.T) {
	net, flows := metricsWorkload(t)
	reg := wsan.NewMetricsRegistry()
	res, err := net.Schedule(flows, wsan.RC, wsan.ScheduleConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Skip("unschedulable draw")
	}
	if got := reg.CounterValue("scheduler.rc.runs"); got != 1 {
		t.Errorf("scheduler.rc.runs = %d, want 1", got)
	}
	// Every transmission in the schedule was counted as one placement.
	if got, want := reg.CounterValue("scheduler.rc.placements"), int64(res.Schedule.Len()); got != want {
		t.Errorf("scheduler.rc.placements = %d, want %d (schedule length)", got, want)
	}
	// findSlot examines at least one slot per placement.
	if got := reg.CounterValue("scheduler.rc.slots_examined"); got < int64(res.Schedule.Len()) {
		t.Errorf("scheduler.rc.slots_examined = %d, want ≥ %d", got, res.Schedule.Len())
	}
	// Reuse placements are placements into occupied cells, so a subset.
	if got := reg.CounterValue("scheduler.rc.reuse_placements"); got < 0 || got > reg.CounterValue("scheduler.rc.placements") {
		t.Errorf("scheduler.rc.reuse_placements = %d out of range", got)
	}
	if reg.CounterValue("scheduler.nr.runs") != 0 {
		t.Error("NR counters should be untouched by an RC run")
	}
}

func TestSimulatorMetricsExact(t *testing.T) {
	net, flows := metricsWorkload(t)
	res, err := net.Schedule(flows, wsan.RC, wsan.ScheduleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Skip("unschedulable draw")
	}
	reg := wsan.NewMetricsRegistry()
	cfg := net.NewSimConfig(flows, res, 20, 5).WithMetricsSink(reg)
	sim, err := wsan.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var released, delivered int64
	for _, n := range sim.Released {
		released += int64(n)
	}
	for _, n := range sim.Delivered {
		delivered += int64(n)
	}
	if got := reg.CounterValue("netsim.runs"); got != 1 {
		t.Errorf("netsim.runs = %d, want 1", got)
	}
	if got := reg.CounterValue("netsim.packets.released"); got != released {
		t.Errorf("netsim.packets.released = %d, want %d (result total)", got, released)
	}
	if got := reg.CounterValue("netsim.packets.delivered"); got != delivered {
		t.Errorf("netsim.packets.delivered = %d, want %d (result total)", got, delivered)
	}
	if got := reg.CounterValue("netsim.packets.lost"); got != released-delivered {
		t.Errorf("netsim.packets.lost = %d, want %d", got, released-delivered)
	}
	// At least one transmission fires per released packet.
	if got := reg.CounterValue("netsim.tx.fired"); got < released {
		t.Errorf("netsim.tx.fired = %d, want ≥ %d", got, released)
	}
	snap := reg.Snapshot()
	if _, ok := snap.Histograms["netsim.run_seconds"]; !ok {
		t.Error("netsim.run_seconds histogram missing from snapshot")
	}
}

func TestNopMetricsSinkAllocations(t *testing.T) {
	var s wsan.NopMetricsSink
	allocs := testing.AllocsPerRun(1000, func() {
		s.Count("netsim.tx.fired", 1)
		s.Gauge("manage.min_pdr", 0.5)
		s.Observe("netsim.run_seconds", 0.1)
	})
	if allocs != 0 {
		t.Errorf("NopMetricsSink allocated %v per run, want 0", allocs)
	}
}

func TestSimulateConvergedCtxCancellation(t *testing.T) {
	net, flows := metricsWorkload(t)
	res, err := net.Schedule(flows, wsan.RC, wsan.ScheduleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Skip("unschedulable draw")
	}
	cfg := net.NewSimConfig(flows, res, 0, 3)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: no chunk should run
	start := time.Now()
	_, err = wsan.SimulateConvergedCtx(ctx, cfg, wsan.ConvergeOpts{MaxChunks: 1000})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.HasPrefix(err.Error(), "wsan: ") {
		t.Errorf("error %q lacks the wsan: prefix", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled converge took %v, want prompt return", elapsed)
	}

	// Mid-run cancellation: a deadline that expires during the chunk loop.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel2()
	start = time.Now()
	_, err = wsan.SimulateConvergedCtx(ctx2, cfg, wsan.ConvergeOpts{
		MaxChunks: 10000, HalfWidth: 1e-9, // unreachable precision
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline-exceeded converge took %v, want prompt return", elapsed)
	}
}

func TestManageCtxCancellation(t *testing.T) {
	net, flows := metricsWorkload(t)
	res, err := net.Schedule(flows, wsan.RA, wsan.ScheduleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Skip("unschedulable draw")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	iters, err := wsan.ManageCtx(ctx, wsan.ManageConfig{
		Testbed:           net.Testbed(),
		Flows:             flows,
		Schedule:          res.Schedule,
		Channels:          net.Channels(),
		EpochSlots:        5_000,
		SampleWindowSlots: 500,
		MaxIterations:     3,
		Seed:              2,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(iters) != 0 {
		t.Errorf("pre-cancelled loop returned %d iterations, want 0", len(iters))
	}
}

func TestErrorPrefixExactlyOnce(t *testing.T) {
	fail := []struct {
		name string
		err  func() error
	}{
		{"Simulate empty config", func() error {
			_, err := wsan.Simulate(wsan.SimConfig{})
			return err
		}},
		{"LoadTestbed bad JSON", func() error {
			_, err := wsan.LoadTestbed(strings.NewReader("{"))
			return err
		}},
		{"Summary empty sample", func() error {
			_, err := wsan.Summary(nil)
			return err
		}},
		{"Manage empty config", func() error {
			_, err := wsan.Manage(wsan.ManageConfig{})
			return err
		}},
	}
	for _, tc := range fail {
		err := tc.err()
		if err == nil {
			t.Errorf("%s: expected an error", tc.name)
			continue
		}
		msg := err.Error()
		if !strings.HasPrefix(msg, "wsan: ") {
			t.Errorf("%s: error %q lacks the wsan: prefix", tc.name, msg)
		}
		if n := strings.Count(msg, "wsan: "); n != 1 {
			t.Errorf("%s: error %q carries the wsan: prefix %d times, want exactly once", tc.name, msg, n)
		}
	}
}

func TestDelayBoundsAttemptDefaults(t *testing.T) {
	_, flows := metricsWorkload(t)

	newAPI, err := wsan.DelayBounds(flows, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	defaulted, err := wsan.DelayBounds(flows, 4, 0) // 0 → default 2 attempts
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(newAPI, defaulted) {
		t.Error("DelayBounds(attempts=0) should default to 2 attempts")
	}
	single, err := wsan.DelayBounds(flows, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(newAPI, single) {
		t.Error("DelayBounds(attempts=1) should differ from attempts=2 (retry slots change the bound)")
	}

	newUtil, err := wsan.AnalyzeUtilization(flows, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	defUtil, err := wsan.AnalyzeUtilization(flows, 4, 0) // 0 → default 2 attempts
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(newUtil, defUtil) {
		t.Error("AnalyzeUtilization(attempts=0) should default to 2 attempts")
	}
}

func TestWithMetricsSinkOption(t *testing.T) {
	reg := wsan.NewMetricsRegistry()
	sim := wsan.SimConfig{}.WithMetricsSink(reg)
	if sim.Metrics != wsan.MetricsSink(reg) {
		t.Error("SimConfig.WithMetricsSink did not attach the sink")
	}
	man := wsan.ManageConfig{}.WithMetricsSink(reg)
	if man.Metrics != wsan.MetricsSink(reg) {
		t.Error("ManageConfig.WithMetricsSink did not attach the sink")
	}
	multi := wsan.MultiMetricsSink(nil, reg, nil)
	if multi != wsan.MetricsSink(reg) {
		t.Error("MultiMetricsSink should collapse to the single non-nil sink")
	}
}
