package wsan_test

import (
	"testing"

	"wsan"
)

// cloneFlows deep-copies a flow set so per-algorithm scheduling runs cannot
// alias routes, budgets, or priorities.
func cloneFlows(fs []*wsan.Flow) []*wsan.Flow {
	out := make([]*wsan.Flow, len(fs))
	for i, f := range fs {
		cp := *f
		cp.Route = append([]wsan.Link(nil), f.Route...)
		cp.TxBudget = append([]int(nil), f.TxBudget...)
		out[i] = &cp
	}
	return out
}

// TestReliabilityTargetEndToEnd is the tentpole acceptance test: a WUSTL
// workload budgeted for a 0.99 delivery-probability target, scheduled under
// each of NR, RA, and RC, and executed for 1000 hyperperiods. Every flow the
// planner marked feasible must reach its target in simulation. Fading and
// survey drift are disabled so the per-attempt delivery probability is
// exactly the survey PRR the planner consumed — the run then validates the
// budgeting math end to end rather than the radio model's noise.
func TestReliabilityTargetEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-hyperperiod end-to-end run skipped in -short mode")
	}
	const target = 0.99
	tb, err := wsan.GenerateWUSTL(1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := wsan.NewNetwork(tb, 4)
	if err != nil {
		t.Fatal(err)
	}
	algs := []wsan.Algorithm{wsan.NR, wsan.RA, wsan.RC}

	// Search seeds for a workload that stays schedulable under every
	// algorithm after the budgeting pass deepens its retransmissions.
	var flows []*wsan.Flow
	var feasible map[int]bool
	var schedules map[wsan.Algorithm]*wsan.ScheduleResult
seeds:
	for seed := int64(0); ; seed++ {
		if seed > 50 {
			t.Fatal("no budget-schedulable 50-flow WUSTL workload in seeds 0..50")
		}
		flows, err = net.GenerateWorkload(wsan.WorkloadConfig{
			NumFlows:     50,
			MinPeriodExp: 0,
			MaxPeriodExp: 0,
			Traffic:      wsan.PeerToPeer,
			Seed:         seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		assigns, err := net.ApplyReliabilityTargets(flows, target, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(assigns) != len(flows) {
			t.Fatalf("budgeted %d of %d flows", len(assigns), len(flows))
		}
		feasible = make(map[int]bool, len(assigns))
		for _, a := range assigns {
			feasible[a.FlowID] = a.Plan.Feasible
			if a.Plan.Feasible && a.Plan.Prob < target {
				t.Fatalf("flow %d marked feasible at prob %.4f < %.2f",
					a.FlowID, a.Plan.Prob, target)
			}
		}
		schedules = make(map[wsan.Algorithm]*wsan.ScheduleResult, len(algs))
		for _, alg := range algs {
			res, err := net.Schedule(cloneFlows(flows), alg, wsan.ScheduleConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Schedulable {
				continue seeds
			}
			schedules[alg] = res
		}
		break
	}

	for _, alg := range algs {
		cfg := net.NewSimConfig(flows, schedules[alg], 1000, 7)
		// Zero noise: per-attempt delivery probability is the planning PRR.
		cfg.FadingSigmaDB = 0
		cfg.SurveyDriftSigmaDB = 0
		res, err := wsan.Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range flows {
			if res.Released[f.ID] == 0 {
				t.Fatalf("%v: flow %d released no packets", alg, f.ID)
			}
			pdr := res.PDR(f.ID)
			if feasible[f.ID] && pdr < target {
				t.Errorf("%v: feasible flow %d delivered %.4f < target %.2f (budget %v)",
					alg, f.ID, pdr, target, f.TxBudget)
			}
		}
		t.Logf("%v: all %d feasible flows at or above %.2f over 1000 hyperperiods",
			alg, len(flows), target)
	}
}
