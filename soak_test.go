package wsan_test

import (
	"math/rand"
	"testing"

	"wsan"
)

// TestSoakPipeline is a long randomized consistency run over the whole
// public API: random small testbeds, random workloads, all three
// schedulers, simulation, detection, and repair. Each step asserts its
// invariants. Skipped in -short mode.
func TestSoakPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			cfg := wsan.DefaultTestbedConfig()
			cfg.NumNodes = 24 + rng.Intn(24)
			cfg.Floors = 1 + rng.Intn(3)
			cfg.FloorWidthM = 60 + rng.Float64()*60
			cfg.FloorDepthM = 25 + rng.Float64()*25
			tb, err := wsan.GenerateTestbed(cfg, seed)
			if err != nil {
				t.Fatal(err)
			}
			nch := 3 + rng.Intn(4)
			net, err := wsan.NewNetwork(tb, nch)
			if err != nil {
				t.Fatal(err)
			}
			if net.CommEdges() < cfg.NumNodes/2 {
				t.Skip("degenerate topology draw")
			}
			traffic := wsan.PeerToPeer
			if rng.Intn(2) == 0 {
				traffic = wsan.Centralized
			}
			flows, err := net.GenerateWorkload(wsan.WorkloadConfig{
				NumFlows:     5 + rng.Intn(30),
				MinPeriodExp: rng.Intn(2),
				MaxPeriodExp: 2,
				Traffic:      traffic,
				Seed:         seed * 13,
			})
			if err != nil {
				t.Skipf("workload generation failed on this draw: %v", err)
			}
			util, err := wsan.AnalyzeUtilization(flows, nch, 2)
			if err != nil {
				t.Fatal(err)
			}
			if util.Channel <= 0 {
				t.Fatal("zero utilization for a non-empty workload")
			}
			for _, alg := range []wsan.Algorithm{wsan.NR, wsan.RA, wsan.RC} {
				res, err := net.Schedule(cloneAll(flows), alg, wsan.ScheduleConfig{})
				if err != nil {
					t.Fatalf("%v: %v", alg, err)
				}
				if !res.Schedulable {
					continue
				}
				// Latency extraction must succeed on any schedulable result
				// and respect deadlines.
				lats, err := wsan.ScheduleLatencies(flows, res)
				if err != nil {
					t.Fatalf("%v: %v", alg, err)
				}
				for _, l := range lats {
					if l.Slack() < 0 {
						t.Fatalf("%v: flow %d has negative slack %d", alg, l.FlowID, l.Slack())
					}
				}
				// A short simulation must run and deliver sanely.
				sim, err := wsan.Simulate(net.NewSimConfig(flows, res, 10, seed))
				if err != nil {
					t.Fatalf("%v: %v", alg, err)
				}
				for _, p := range sim.PDRs() {
					if p < 0 || p > 1 {
						t.Fatalf("%v: PDR %v out of range", alg, p)
					}
				}
			}
		})
	}
}

func cloneAll(flows []*wsan.Flow) []*wsan.Flow {
	out := make([]*wsan.Flow, len(flows))
	for i, f := range flows {
		cp := *f
		cp.Route = append([]wsan.Link(nil), f.Route...)
		out[i] = &cp
	}
	return out
}
