// Package wsan is a library for real-time industrial wireless
// sensor-actuator networks (WirelessHART / IEEE 802.15.4e TSCH) implementing
// the conservative channel-reuse scheduling system of Gunatilaka & Lu,
// "Conservative Channel Reuse in Real-Time Industrial Wireless
// Sensor-Actuator Networks" (ICDCS 2018).
//
// The library covers the full pipeline a WirelessHART network manager runs:
//
//   - testbed/topology modeling with per-channel PRR link statistics
//     (synthetic Indriya- and WUSTL-like generators plus custom builders),
//   - communication-graph and channel-reuse-graph construction,
//   - periodic real-time flow workloads with Deadline-Monotonic priorities,
//   - centralized (through-gateway) and peer-to-peer source routing,
//   - three fixed-priority TSCH schedulers: NR (no channel reuse — the
//     WirelessHART standard), RA (aggressive reuse), and RC (the paper's
//     Reuse Conservatively algorithm driven by flow laxity),
//   - a slot-accurate TSCH network simulator with SINR-based reception,
//     channel hopping, retransmissions, capture effect, and WiFi-style
//     external interference, and
//   - the Kolmogorov-Smirnov-based classifier that attributes link
//     reliability degradation to channel reuse versus external causes.
//
// The Network type wires the pipeline together; see examples/ for complete
// programs and internal/experiment for the reproduction of every figure in
// the paper's evaluation.
package wsan

import (
	"context"
	"fmt"
	"io"
	"strings"

	"wsan/internal/analysis"
	"wsan/internal/budget"
	"wsan/internal/detect"
	"wsan/internal/faults"
	"wsan/internal/flow"
	"wsan/internal/manage"
	"wsan/internal/netsim"
	"wsan/internal/obs"
	"wsan/internal/repair"
	"wsan/internal/routing"
	"wsan/internal/schedule"
	"wsan/internal/scheduler"
	"wsan/internal/soak"
	"wsan/internal/stats"
	"wsan/internal/topology"
)

// wrapErr guarantees the package's error contract: every error escaping the
// public API carries the "wsan:" prefix exactly once. Errors already
// prefixed (e.g. produced by another public entry point on the same path)
// pass through unchanged, and the underlying error remains available to
// errors.Is/As via %w.
func wrapErr(err error) error {
	if err == nil {
		return nil
	}
	if strings.HasPrefix(err.Error(), "wsan: ") {
		return err
	}
	return fmt.Errorf("wsan: %w", err)
}

// Re-exported data types. These are aliases, so values flow freely between
// the public API and the subsystem packages.
type (
	// Testbed is a deployment: nodes plus per-channel link PRRs and gains.
	Testbed = topology.Testbed
	// Node is one field device.
	Node = topology.Node
	// TestbedConfig parameterizes synthetic testbed generation.
	TestbedConfig = topology.GenConfig
	// Flow is one periodic end-to-end real-time flow.
	Flow = flow.Flow
	// Link is a directed hop.
	Link = flow.Link
	// Algorithm selects a scheduling policy (NR, RA, RC).
	Algorithm = scheduler.Algorithm
	// ScheduleResult is the outcome of a scheduling run.
	ScheduleResult = scheduler.Result
	// Traffic selects the routing pattern (Centralized, PeerToPeer).
	Traffic = routing.Traffic
	// SimConfig parameterizes the TSCH network simulator.
	SimConfig = netsim.Config
	// SimResult holds per-flow delivery and per-link statistics.
	SimResult = netsim.Result
	// Interferer is an external interference source.
	Interferer = netsim.Interferer
	// FaultScenario is a deterministic, seeded fault timeline the simulator
	// applies while executing a schedule (set SimConfig.Faults /
	// ManageConfig.Faults).
	FaultScenario = faults.Scenario
	// FaultEvent is one entry of a fault timeline.
	FaultEvent = faults.Event
	// FaultKind names one fault-event type.
	FaultKind = faults.EventKind
	// FaultCounts tallies the fault events a simulation applied, by kind
	// (SimResult.FaultEvents).
	FaultCounts = faults.Counts
	// DetectionReport classifies one link-epoch.
	DetectionReport = detect.Report
	// DetectionConfig parameterizes the detection policy.
	DetectionConfig = detect.Config
	// Verdict is the detection outcome for a link-epoch.
	Verdict = detect.Verdict
	// FiveNum is a box-plot five-number summary.
	FiveNum = stats.FiveNum
	// KSResult is a two-sample Kolmogorov-Smirnov test outcome.
	KSResult = stats.KSResult
)

// Scheduling algorithms.
const (
	// NR is the standard WirelessHART policy: no channel reuse.
	NR = scheduler.NR
	// RA reuses channels aggressively whenever the hop constraint allows.
	RA = scheduler.RA
	// RC is the paper's conservative reuse algorithm.
	RC = scheduler.RC
)

// Traffic patterns.
const (
	// Centralized routes flows through access points and the wired gateway.
	Centralized = routing.Centralized
	// PeerToPeer routes flows directly between field devices.
	PeerToPeer = routing.PeerToPeer
)

// Fault-event kinds. The values are the wire strings of the scenario JSON
// format.
const (
	// FaultNodeCrash silences a node until a matching FaultNodeRecover.
	FaultNodeCrash = faults.NodeCrash
	// FaultNodeRecover brings a crashed node back.
	FaultNodeRecover = faults.NodeRecover
	// FaultLinkBlackout severs one link in both directions.
	FaultLinkBlackout = faults.LinkBlackout
	// FaultLinkRestore lifts a blackout.
	FaultLinkRestore = faults.LinkRestore
	// FaultInterferenceStart raises the noise floor on the listed channels.
	FaultInterferenceStart = faults.InterferenceStart
	// FaultInterferenceStop clears scenario interference from the channels.
	FaultInterferenceStop = faults.InterferenceStop
	// FaultDriftStep layers a deterministic Gaussian gain shift onto the
	// radio environment.
	FaultDriftStep = faults.DriftStep
)

// Detection verdicts.
const (
	// VerdictMeets: the link meets the reliability requirement.
	VerdictMeets = detect.Meets
	// VerdictReuseDegraded: channel reuse degrades the link.
	VerdictReuseDegraded = detect.ReuseDegraded
	// VerdictOtherCause: degradation stems from external causes.
	VerdictOtherCause = detect.OtherCause
	// VerdictInconclusive: not enough samples to decide.
	VerdictInconclusive = detect.Inconclusive
)

// NumChannels is the number of IEEE 802.15.4 channels (16, numbered 11–26
// and indexed 0–15 here).
const NumChannels = topology.NumChannels

// GenerateIndriya synthesizes the 80-node Indriya-like testbed.
func GenerateIndriya(seed int64) (*Testbed, error) {
	tb, err := topology.Indriya(seed)
	return tb, wrapErr(err)
}

// GenerateWUSTL synthesizes the 60-node WUSTL-like testbed.
func GenerateWUSTL(seed int64) (*Testbed, error) {
	tb, err := topology.WUSTL(seed)
	return tb, wrapErr(err)
}

// GenerateTestbed synthesizes a testbed from an arbitrary configuration.
func GenerateTestbed(cfg TestbedConfig, seed int64) (*Testbed, error) {
	tb, err := topology.Generate(cfg, seed)
	return tb, wrapErr(err)
}

// DefaultTestbedConfig returns a mid-size three-floor deployment
// configuration to customize.
func DefaultTestbedConfig() TestbedConfig { return topology.DefaultGenConfig() }

// CustomTestbed builds a testbed from explicit link gains.
func CustomTestbed(name string, nodes []Node, gain func(u, v, ch int) float64) (*Testbed, error) {
	tb, err := topology.Custom(name, nodes, gain, topology.DefaultGenConfig())
	return tb, wrapErr(err)
}

// SaveTestbed writes a testbed as JSON.
func SaveTestbed(tb *Testbed, w io.Writer) error { return wrapErr(tb.Encode(w)) }

// LoadTestbed reads a testbed written by SaveTestbed.
func LoadTestbed(r io.Reader) (*Testbed, error) {
	tb, err := topology.Decode(r)
	return tb, wrapErr(err)
}

// SaveWorkload writes a routed flow set as JSON — the workload.json format
// of the wsansim toolchain and the network-manager daemon's artifacts.
func SaveWorkload(flows []*Flow, w io.Writer) error {
	return wrapErr(flow.EncodeWorkload(w, flows))
}

// LoadWorkload reads a flow set written by SaveWorkload, validating every
// flow and the priority numbering.
func LoadWorkload(r io.Reader) ([]*Flow, error) {
	fs, err := flow.DecodeWorkload(r)
	return fs, wrapErr(err)
}

// SaveSchedule writes a schedule as JSON — the schedule.json format of the
// wsansim toolchain and the network-manager daemon's artifacts.
func SaveSchedule(res *ScheduleResult, w io.Writer) error {
	if res == nil || res.Schedule == nil {
		return fmt.Errorf("wsan: nil schedule")
	}
	return wrapErr(res.Schedule.Encode(w))
}

// LoadSchedule reads a schedule written by SaveSchedule, re-validating
// every placement. The returned result reports the loaded schedule as
// schedulable (an unschedulable run is never persisted).
func LoadSchedule(r io.Reader) (*ScheduleResult, error) {
	s, err := schedule.Decode(r)
	if err != nil {
		return nil, wrapErr(err)
	}
	return &ScheduleResult{Schedule: s, Schedulable: true, FailedFlow: -1}, nil
}

// SaveFaultScenario writes a fault scenario as JSON — the scenario.json
// format of the wsansim -faults flag and the daemon's job parameters.
func SaveFaultScenario(sc *FaultScenario, w io.Writer) error {
	if sc == nil {
		return fmt.Errorf("wsan: nil fault scenario")
	}
	return wrapErr(sc.Encode(w))
}

// LoadFaultScenario reads a scenario written by SaveFaultScenario,
// validating every event (node ranges are checked against the testbed when
// the simulation starts).
func LoadFaultScenario(r io.Reader) (*FaultScenario, error) {
	sc, err := faults.Decode(r)
	return sc, wrapErr(err)
}

// Observability re-exports: the wsan pipeline reports counters, gauges,
// histograms, and events through a MetricsSink (see internal/obs). Attach
// one with SimConfig.WithMetricsSink / ManageConfig.WithMetricsSink or the
// Metrics field of the configuration structs; a nil sink (the default)
// disables observability at near-zero cost.
type (
	// MetricsSink receives the observability stream. Implement it to feed
	// your own telemetry system, or use a MetricsRegistry.
	MetricsSink = obs.Sink
	// MetricsRegistry is the built-in aggregating sink with a JSON snapshot.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a registry's state.
	MetricsSnapshot = obs.Snapshot
	// NopMetricsSink discards the stream (useful to pin the overhead of an
	// always-on call site).
	NopMetricsSink = obs.NopSink
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// MultiMetricsSink fans the observability stream out to several sinks.
func MultiMetricsSink(sinks ...MetricsSink) MetricsSink { return obs.MultiSink(sinks...) }

// Simulate executes a schedule on the TSCH network simulator.
func Simulate(cfg SimConfig) (*SimResult, error) {
	return SimulateCtx(context.Background(), cfg)
}

// SimulateCtx is Simulate with cancellation: ctx is checked between
// slotframe executions, so a cancelled context stops a long simulation
// within one hyperperiod and the error satisfies errors.Is(err, ctx.Err()).
func SimulateCtx(ctx context.Context, cfg SimConfig) (*SimResult, error) {
	res, err := netsim.RunCtx(ctx, cfg)
	return res, wrapErr(err)
}

// ConvergeOpts controls SimulateConverged's sequential stopping rule.
type ConvergeOpts = netsim.ConvergeOpts

// ConvergeResult is the aggregated outcome with its achieved precision.
type ConvergeResult = netsim.ConvergeResult

// SimulateConverged runs independent simulation chunks until every flow's
// PDR estimate reaches the requested confidence half-width — a statistically
// principled alternative to a fixed execution count.
func SimulateConverged(cfg SimConfig, opts ConvergeOpts) (*ConvergeResult, error) {
	return SimulateConvergedCtx(context.Background(), cfg, opts)
}

// SimulateConvergedCtx is SimulateConverged with cancellation: ctx is
// checked before every chunk and between the slotframe executions inside
// each chunk, so a cancelled context stops the sequential procedure
// promptly with an error satisfying errors.Is(err, ctx.Err()).
func SimulateConvergedCtx(ctx context.Context, cfg SimConfig, opts ConvergeOpts) (*ConvergeResult, error) {
	res, err := netsim.ConvergeCtx(ctx, cfg, opts)
	return res, wrapErr(err)
}

// DetectDegradation classifies every reuse-associated link from simulator
// link statistics.
func DetectDegradation(res *SimResult, cfg DetectionConfig) []DetectionReport {
	return detect.Classify(res.LinkEpochs, cfg)
}

// DefaultDetectionConfig returns the paper's detection parameters
// (PRR_t = 0.9, α = 0.05).
func DefaultDetectionConfig() DetectionConfig { return detect.DefaultConfig() }

// KSTest runs a two-sample Kolmogorov-Smirnov test.
func KSTest(a, b []float64) (KSResult, error) {
	res, err := stats.KSTest(a, b)
	return res, wrapErr(err)
}

// Summary computes a box-plot five-number summary.
func Summary(xs []float64) (FiveNum, error) {
	fn, err := stats.Summary(xs)
	return fn, wrapErr(err)
}

// EnergyModel assigns per-slot radio costs for battery-life estimation.
type EnergyModel = netsim.EnergyModel

// DefaultEnergyModel returns CC2420-class per-slot costs.
func DefaultEnergyModel() EnergyModel { return netsim.DefaultEnergyModel() }

// LifetimeYears estimates battery life from per-slotframe energy.
func LifetimeYears(energyMJPerFrame float64, slotframeSlots int, batteryJ float64) float64 {
	return netsim.LifetimeYears(energyMJPerFrame, slotframeSlots, batteryJ)
}

// ManageConfig parameterizes the closed management loop.
type ManageConfig = manage.Config

// ManageIteration reports one observe→classify→repair cycle.
type ManageIteration = manage.Iteration

// ManageHealth classifies the network at the end of a management iteration.
type ManageHealth = manage.Health

// ManageHealth values (the wire strings are "healthy", "degraded",
// "recovered").
const (
	HealthHealthy   = manage.Healthy
	HealthDegraded  = manage.Degraded
	HealthRecovered = manage.Recovered
)

// Manage runs the closed loop — execute, detect reuse degradation, repair,
// repeat — until the network is clean, repair stalls, or the iteration
// budget is spent. The schedule in cfg is mutated by the applied repairs.
func Manage(cfg ManageConfig) ([]ManageIteration, error) {
	return ManageCtx(context.Background(), cfg)
}

// ManageCtx is Manage with cancellation: ctx is checked before every
// observe→classify→repair cycle and inside the observation simulation, so a
// cancelled context stops the loop promptly with an error satisfying
// errors.Is(err, ctx.Err()). Iterations completed before the cancellation
// are returned alongside the error; the schedule keeps their repairs.
func ManageCtx(ctx context.Context, cfg ManageConfig) ([]ManageIteration, error) {
	iters, err := manage.LoopCtx(ctx, cfg)
	return iters, wrapErr(err)
}

// SoakConfig parameterizes a sustained-churn soak run (see Soak). The zero
// value is not runnable; start from DefaultSoakConfig.
type SoakConfig = soak.Config

// SoakProgress is a live snapshot of a running soak, delivered through
// SoakConfig.OnProgress.
type SoakProgress = soak.Progress

// SoakResult reports one completed soak run: churn throughput, apply-latency
// percentiles, repair-ladder fallback counts, replay-oracle checkpoints, and
// the canonical schedule digest.
type SoakResult = soak.Result

// DefaultSoakConfig is the evaluation operating point: 500 flows on the
// Indriya testbed, 5000 churn operations, oracle checkpoints every 1000
// applied deltas.
func DefaultSoakConfig() SoakConfig { return soak.DefaultConfig() }

// Soak drives the sustained-churn harness: a seeded stream of add / remove /
// reroute / re-budget flow deltas — plus periodic node-fault batches applied
// atomically — against a live schedule, cross-checking the incremental
// scheduler against an independent replay oracle at every checkpoint. Any
// oracle divergence or constraint violation is an error; an infeasible delta
// is an expected outcome and only counted. ctx cancellation stops the run
// between operations.
func Soak(ctx context.Context, cfg SoakConfig) (*SoakResult, error) {
	res, err := soak.Run(ctx, cfg)
	return res, wrapErr(err)
}

// RepairResult reports what a schedule-repair pass did.
type RepairResult = repair.Result

// Repair reassigns the transmissions of reuse-degraded links (per the
// detection reports) to contention-free cells, mutating the schedule in
// place — the remediation Sec. VI of the paper motivates.
func Repair(res *ScheduleResult, flows []*Flow, reports []DetectionReport) (*RepairResult, error) {
	out, err := repair.RescheduleFromReports(res.Schedule, flows, reports)
	return out, wrapErr(err)
}

// Compact shifts transmissions toward earlier slots after repairs or
// incremental admissions, recovering latency without violating any
// scheduling constraint. Moves target exclusive cells only, so compaction
// never introduces channel sharing a conservative schedule avoided. It
// returns how many transmissions moved; a fresh earliest-slot schedule is a
// fixed point.
func (n *Network) Compact(res *ScheduleResult, flows []*Flow) (int, error) {
	moved, err := repair.Compact(res.Schedule, flows, nil, 0)
	return moved, wrapErr(err)
}

// ScheduleDelta is one dissemination delta entry (add or remove).
type ScheduleDelta = schedule.Change

// DiffSchedules computes the dissemination delta between two schedule
// states (e.g. before and after a repair): removals first, then additions.
func DiffSchedules(old, new *ScheduleResult) ([]ScheduleDelta, error) {
	delta, err := schedule.Diff(old.Schedule, new.Schedule)
	return delta, wrapErr(err)
}

// InvertDeltas returns the delta that undoes the given one (adds become
// removes and vice versa), letting a caller roll an applied DeltaResult
// back atomically.
func InvertDeltas(delta []ScheduleDelta) []ScheduleDelta {
	return schedule.Invert(delta)
}

// CloneSchedule snapshots a schedule state for later diffing.
func CloneSchedule(res *ScheduleResult) *ScheduleResult {
	cp := *res
	cp.Schedule = res.Schedule.Clone()
	return &cp
}

// Analysis re-exports.
type (
	// FlowLatency summarizes one flow's end-to-end schedule latency.
	FlowLatency = analysis.FlowLatency
	// DelayBound is a worst-case response-time bound for one flow.
	DelayBound = analysis.DelayBound
	// NetworkUtilization accounts a workload's demand.
	NetworkUtilization = analysis.Utilization
	// ReliabilityBound is the end-to-end delivery-probability verdict for
	// one flow — the reliability axis of the analysis, next to DelayBound.
	ReliabilityBound = analysis.ReliabilityBound
	// BudgetPlan is a per-hop retransmission-slot plan meeting (or
	// best-effort approaching) a delivery-probability target.
	BudgetPlan = budget.Plan
	// BudgetAssignment pairs a flow with the plan applied to it.
	BudgetAssignment = budget.Assignment
	// FlowShortfall reports a targeted flow the manage loop cannot carry
	// to its TargetPDR under the observed link PRRs.
	FlowShortfall = manage.FlowShortfall
)

// DefaultMaxAttemptsPerHop is the default cap on per-hop retransmission
// budgets (see BudgetPlan).
const DefaultMaxAttemptsPerHop = budget.DefaultMaxAttemptsPerHop

// PlanBudget computes the minimal per-hop retransmission budget whose
// end-to-end delivery-probability bound Π(1-(1-pᵢ)^kᵢ) meets target over
// hops with the given PRRs. maxPerHop caps each hop (0 selects
// DefaultMaxAttemptsPerHop); an unreachable target returns the capped
// best-effort plan with Feasible=false.
func PlanBudget(prrs []float64, target float64, maxPerHop int) (BudgetPlan, error) {
	p, err := budget.Compute(prrs, target, maxPerHop)
	return p, wrapErr(err)
}

// ReliabilityBounds computes every flow's end-to-end delivery-probability
// bound from per-link PRRs, honoring per-hop TxBudget multiplicities.
// attempts is the uniform per-hop slot count for flows without a budget; 0
// selects the WirelessHART source-routing default of 2.
func ReliabilityBounds(flows []*Flow, linkPRR func(Link) float64, attempts int) ([]ReliabilityBound, error) {
	if attempts == 0 {
		attempts = 2
	}
	bounds, err := analysis.ReliabilityAnalysis(flows, linkPRR, attempts)
	return bounds, wrapErr(err)
}

// AllMeetReliabilityTargets reports whether every targeted flow's bound
// clears its TargetPDR.
func AllMeetReliabilityTargets(bounds []ReliabilityBound) bool {
	return analysis.AllMeetTargets(bounds)
}

// ScheduleLatencies extracts per-flow end-to-end latencies from a schedule.
func ScheduleLatencies(flows []*Flow, res *ScheduleResult) ([]FlowLatency, error) {
	lats, err := analysis.Latencies(flows, res.Schedule)
	return lats, wrapErr(err)
}

// DelayBounds runs the fixed-priority worst-case delay bound (a sufficient
// schedulability test for NR) on a routed flow set. attempts is the number
// of dedicated slots per hop; 0 selects the WirelessHART source-routing
// default of 2 (one primary transmission plus one retry).
func DelayBounds(flows []*Flow, numChannels, attempts int) ([]DelayBound, error) {
	if attempts == 0 {
		attempts = 2
	}
	bounds, err := analysis.DelayAnalysis(flows, numChannels, attempts)
	return bounds, wrapErr(err)
}

// AnalyzeUtilization accounts channel and bottleneck-node demand. attempts
// is the number of dedicated slots per hop; 0 selects the WirelessHART
// source-routing default of 2 (one primary transmission plus one retry).
func AnalyzeUtilization(flows []*Flow, numChannels, attempts int) (NetworkUtilization, error) {
	if attempts == 0 {
		attempts = 2
	}
	u, err := analysis.ComputeUtilization(flows, numChannels, attempts)
	return u, wrapErr(err)
}
