// Package wsan is a library for real-time industrial wireless
// sensor-actuator networks (WirelessHART / IEEE 802.15.4e TSCH) implementing
// the conservative channel-reuse scheduling system of Gunatilaka & Lu,
// "Conservative Channel Reuse in Real-Time Industrial Wireless
// Sensor-Actuator Networks" (ICDCS 2018).
//
// The library covers the full pipeline a WirelessHART network manager runs:
//
//   - testbed/topology modeling with per-channel PRR link statistics
//     (synthetic Indriya- and WUSTL-like generators plus custom builders),
//   - communication-graph and channel-reuse-graph construction,
//   - periodic real-time flow workloads with Deadline-Monotonic priorities,
//   - centralized (through-gateway) and peer-to-peer source routing,
//   - three fixed-priority TSCH schedulers: NR (no channel reuse — the
//     WirelessHART standard), RA (aggressive reuse), and RC (the paper's
//     Reuse Conservatively algorithm driven by flow laxity),
//   - a slot-accurate TSCH network simulator with SINR-based reception,
//     channel hopping, retransmissions, capture effect, and WiFi-style
//     external interference, and
//   - the Kolmogorov-Smirnov-based classifier that attributes link
//     reliability degradation to channel reuse versus external causes.
//
// The Network type wires the pipeline together; see examples/ for complete
// programs and internal/experiment for the reproduction of every figure in
// the paper's evaluation.
package wsan

import (
	"io"

	"wsan/internal/analysis"
	"wsan/internal/detect"
	"wsan/internal/flow"
	"wsan/internal/manage"
	"wsan/internal/netsim"
	"wsan/internal/repair"
	"wsan/internal/routing"
	"wsan/internal/schedule"
	"wsan/internal/scheduler"
	"wsan/internal/stats"
	"wsan/internal/topology"
)

// Re-exported data types. These are aliases, so values flow freely between
// the public API and the subsystem packages.
type (
	// Testbed is a deployment: nodes plus per-channel link PRRs and gains.
	Testbed = topology.Testbed
	// Node is one field device.
	Node = topology.Node
	// TestbedConfig parameterizes synthetic testbed generation.
	TestbedConfig = topology.GenConfig
	// Flow is one periodic end-to-end real-time flow.
	Flow = flow.Flow
	// Link is a directed hop.
	Link = flow.Link
	// Algorithm selects a scheduling policy (NR, RA, RC).
	Algorithm = scheduler.Algorithm
	// ScheduleResult is the outcome of a scheduling run.
	ScheduleResult = scheduler.Result
	// Traffic selects the routing pattern (Centralized, PeerToPeer).
	Traffic = routing.Traffic
	// SimConfig parameterizes the TSCH network simulator.
	SimConfig = netsim.Config
	// SimResult holds per-flow delivery and per-link statistics.
	SimResult = netsim.Result
	// Interferer is an external interference source.
	Interferer = netsim.Interferer
	// DetectionReport classifies one link-epoch.
	DetectionReport = detect.Report
	// DetectionConfig parameterizes the detection policy.
	DetectionConfig = detect.Config
	// Verdict is the detection outcome for a link-epoch.
	Verdict = detect.Verdict
	// FiveNum is a box-plot five-number summary.
	FiveNum = stats.FiveNum
	// KSResult is a two-sample Kolmogorov-Smirnov test outcome.
	KSResult = stats.KSResult
)

// Scheduling algorithms.
const (
	// NR is the standard WirelessHART policy: no channel reuse.
	NR = scheduler.NR
	// RA reuses channels aggressively whenever the hop constraint allows.
	RA = scheduler.RA
	// RC is the paper's conservative reuse algorithm.
	RC = scheduler.RC
)

// Traffic patterns.
const (
	// Centralized routes flows through access points and the wired gateway.
	Centralized = routing.Centralized
	// PeerToPeer routes flows directly between field devices.
	PeerToPeer = routing.PeerToPeer
)

// Detection verdicts.
const (
	// VerdictMeets: the link meets the reliability requirement.
	VerdictMeets = detect.Meets
	// VerdictReuseDegraded: channel reuse degrades the link.
	VerdictReuseDegraded = detect.ReuseDegraded
	// VerdictOtherCause: degradation stems from external causes.
	VerdictOtherCause = detect.OtherCause
	// VerdictInconclusive: not enough samples to decide.
	VerdictInconclusive = detect.Inconclusive
)

// NumChannels is the number of IEEE 802.15.4 channels (16, numbered 11–26
// and indexed 0–15 here).
const NumChannels = topology.NumChannels

// GenerateIndriya synthesizes the 80-node Indriya-like testbed.
func GenerateIndriya(seed int64) (*Testbed, error) { return topology.Indriya(seed) }

// GenerateWUSTL synthesizes the 60-node WUSTL-like testbed.
func GenerateWUSTL(seed int64) (*Testbed, error) { return topology.WUSTL(seed) }

// GenerateTestbed synthesizes a testbed from an arbitrary configuration.
func GenerateTestbed(cfg TestbedConfig, seed int64) (*Testbed, error) {
	return topology.Generate(cfg, seed)
}

// DefaultTestbedConfig returns a mid-size three-floor deployment
// configuration to customize.
func DefaultTestbedConfig() TestbedConfig { return topology.DefaultGenConfig() }

// CustomTestbed builds a testbed from explicit link gains.
func CustomTestbed(name string, nodes []Node, gain func(u, v, ch int) float64) (*Testbed, error) {
	return topology.Custom(name, nodes, gain, topology.DefaultGenConfig())
}

// SaveTestbed writes a testbed as JSON.
func SaveTestbed(tb *Testbed, w io.Writer) error { return tb.Encode(w) }

// LoadTestbed reads a testbed written by SaveTestbed.
func LoadTestbed(r io.Reader) (*Testbed, error) { return topology.Decode(r) }

// Simulate executes a schedule on the TSCH network simulator.
func Simulate(cfg SimConfig) (*SimResult, error) { return netsim.Run(cfg) }

// ConvergeOpts controls SimulateConverged's sequential stopping rule.
type ConvergeOpts = netsim.ConvergeOpts

// ConvergeResult is the aggregated outcome with its achieved precision.
type ConvergeResult = netsim.ConvergeResult

// SimulateConverged runs independent simulation chunks until every flow's
// PDR estimate reaches the requested confidence half-width — a statistically
// principled alternative to a fixed execution count.
func SimulateConverged(cfg SimConfig, opts ConvergeOpts) (*ConvergeResult, error) {
	return netsim.Converge(cfg, opts)
}

// DetectDegradation classifies every reuse-associated link from simulator
// link statistics.
func DetectDegradation(res *SimResult, cfg DetectionConfig) []DetectionReport {
	return detect.Classify(res.LinkEpochs, cfg)
}

// DefaultDetectionConfig returns the paper's detection parameters
// (PRR_t = 0.9, α = 0.05).
func DefaultDetectionConfig() DetectionConfig { return detect.DefaultConfig() }

// KSTest runs a two-sample Kolmogorov-Smirnov test.
func KSTest(a, b []float64) (KSResult, error) { return stats.KSTest(a, b) }

// Summary computes a box-plot five-number summary.
func Summary(xs []float64) (FiveNum, error) { return stats.Summary(xs) }

// EnergyModel assigns per-slot radio costs for battery-life estimation.
type EnergyModel = netsim.EnergyModel

// DefaultEnergyModel returns CC2420-class per-slot costs.
func DefaultEnergyModel() EnergyModel { return netsim.DefaultEnergyModel() }

// LifetimeYears estimates battery life from per-slotframe energy.
func LifetimeYears(energyMJPerFrame float64, slotframeSlots int, batteryJ float64) float64 {
	return netsim.LifetimeYears(energyMJPerFrame, slotframeSlots, batteryJ)
}

// ManageConfig parameterizes the closed management loop.
type ManageConfig = manage.Config

// ManageIteration reports one observe→classify→repair cycle.
type ManageIteration = manage.Iteration

// Manage runs the closed loop — execute, detect reuse degradation, repair,
// repeat — until the network is clean, repair stalls, or the iteration
// budget is spent. The schedule in cfg is mutated by the applied repairs.
func Manage(cfg ManageConfig) ([]ManageIteration, error) { return manage.Loop(cfg) }

// RepairResult reports what a schedule-repair pass did.
type RepairResult = repair.Result

// Repair reassigns the transmissions of reuse-degraded links (per the
// detection reports) to contention-free cells, mutating the schedule in
// place — the remediation Sec. VI of the paper motivates.
func Repair(res *ScheduleResult, flows []*Flow, reports []DetectionReport) (*RepairResult, error) {
	return repair.RescheduleFromReports(res.Schedule, flows, reports)
}

// Compact shifts transmissions toward earlier slots after repairs or
// incremental admissions, recovering latency without violating any
// scheduling constraint. Moves target exclusive cells only, so compaction
// never introduces channel sharing a conservative schedule avoided. It
// returns how many transmissions moved; a fresh earliest-slot schedule is a
// fixed point.
func (n *Network) Compact(res *ScheduleResult, flows []*Flow) (int, error) {
	return repair.Compact(res.Schedule, flows, nil, 0)
}

// ScheduleDelta is one dissemination delta entry (add or remove).
type ScheduleDelta = schedule.Change

// DiffSchedules computes the dissemination delta between two schedule
// states (e.g. before and after a repair): removals first, then additions.
func DiffSchedules(old, new *ScheduleResult) ([]ScheduleDelta, error) {
	return schedule.Diff(old.Schedule, new.Schedule)
}

// CloneSchedule snapshots a schedule state for later diffing.
func CloneSchedule(res *ScheduleResult) *ScheduleResult {
	cp := *res
	cp.Schedule = res.Schedule.Clone()
	return &cp
}

// Analysis re-exports.
type (
	// FlowLatency summarizes one flow's end-to-end schedule latency.
	FlowLatency = analysis.FlowLatency
	// DelayBound is a worst-case response-time bound for one flow.
	DelayBound = analysis.DelayBound
	// NetworkUtilization accounts a workload's demand.
	NetworkUtilization = analysis.Utilization
)

// ScheduleLatencies extracts per-flow end-to-end latencies from a schedule.
func ScheduleLatencies(flows []*Flow, res *ScheduleResult) ([]FlowLatency, error) {
	return analysis.Latencies(flows, res.Schedule)
}

// DelayAnalysis runs the fixed-priority worst-case delay bound (a sufficient
// schedulability test for NR) on a routed flow set.
func DelayAnalysis(flows []*Flow, numChannels int, retransmit bool) ([]DelayBound, error) {
	attempts := 1
	if retransmit {
		attempts = 2
	}
	return analysis.DelayAnalysis(flows, numChannels, attempts)
}

// ComputeUtilization accounts channel and bottleneck-node demand.
func ComputeUtilization(flows []*Flow, numChannels int, retransmit bool) (NetworkUtilization, error) {
	attempts := 1
	if retransmit {
		attempts = 2
	}
	return analysis.ComputeUtilization(flows, numChannels, attempts)
}
