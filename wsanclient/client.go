package wsanclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Options parameterizes a Client.
type Options struct {
	// HTTPClient overrides the transport (default http.DefaultClient).
	// Streams hold one connection open per subscription, so a client with
	// an overall Timeout set would kill them — use per-request contexts
	// for deadlines instead.
	HTTPClient *http.Client
	// MaxRetries bounds the retry attempts per request beyond the first
	// (default 3). Only transient failures are retried: connection errors,
	// 429 (honoring Retry-After), and 502/503/504. Retrying a submission
	// is safe — jobs are content-addressed, so a duplicate delivery is a
	// cache hit, not a duplicate job.
	MaxRetries int
	// RetryBackoff is the base delay before the first retry, doubling per
	// attempt (default 250ms, capped at 15s). 429 responses carrying
	// Retry-After use that value instead.
	RetryBackoff time.Duration
}

// Client talks to one wsan daemon. It is safe for concurrent use.
type Client struct {
	base    string // normalized base URL, no trailing slash, no /v1
	http    *http.Client
	retries int
	backoff time.Duration
}

// New builds a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8080"). The client always targets the /v1 API.
func New(baseURL string, opts Options) *Client {
	hc := opts.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	retries := opts.MaxRetries
	if retries == 0 {
		retries = 3
	}
	if retries < 0 {
		retries = 0
	}
	backoff := opts.RetryBackoff
	if backoff <= 0 {
		backoff = 250 * time.Millisecond
	}
	return &Client{
		base:    strings.TrimSuffix(baseURL, "/"),
		http:    hc,
		retries: retries,
		backoff: backoff,
	}
}

// BaseURL returns the daemon base URL the client was built with.
func (c *Client) BaseURL() string { return c.base }

// url assembles a /v1 endpoint URL from path segments, escaping each.
func (c *Client) url(segments ...string) string {
	var b strings.Builder
	b.WriteString(c.base)
	b.WriteString("/v1")
	for _, s := range segments {
		b.WriteByte('/')
		b.WriteString(url.PathEscape(s))
	}
	return b.String()
}

// maxClientBackoff caps the retry backoff growth.
const maxClientBackoff = 15 * time.Second

// retryDelay returns the backoff before retry (0-based), preferring the
// server's Retry-After when one was sent.
func (c *Client) retryDelay(retry int, resp *http.Response) time.Duration {
	if resp != nil {
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
				return time.Duration(secs) * time.Second
			}
		}
	}
	d := c.backoff
	for i := 0; i < retry && d < maxClientBackoff; i++ {
		d <<= 1
	}
	if d > maxClientBackoff {
		d = maxClientBackoff
	}
	return d
}

// retryableStatus reports whether an HTTP status is worth retrying.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// decodeAPIError builds the typed error from a non-2xx response body. A
// body that is not the v1 envelope (a proxy's error page, a pre-v1 daemon)
// degrades to an APIError with an empty code and the raw body as message.
func decodeAPIError(status int, body []byte) *APIError {
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Message != "" {
		return &APIError{Status: status, Code: env.Error.Code, Message: env.Error.Message}
	}
	msg := strings.TrimSpace(string(body))
	if msg == "" {
		msg = http.StatusText(status)
	}
	return &APIError{Status: status, Message: msg}
}

// asAPIError is errors.As specialized for *APIError.
func asAPIError(err error, target **APIError) bool { return errors.As(err, target) }

// do issues one request with retries and decodes a 2xx JSON response into
// out (nil skips decoding). body, when non-nil, is marshalled as JSON and
// re-sent identically on every retry.
func (c *Client) do(ctx context.Context, method, u string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		payload, err = json.Marshal(body)
		if err != nil {
			return fmt.Errorf("wsanclient: encoding request: %w", err)
		}
	}
	var lastErr error
	for retry := 0; ; retry++ {
		var rd io.Reader
		if payload != nil {
			rd = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, u, rd)
		if err != nil {
			return fmt.Errorf("wsanclient: %w", err)
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.http.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("wsanclient: %s %s: %w", method, u, err)
			if ctx.Err() != nil || retry >= c.retries {
				return lastErr
			}
			if err := sleepCtx(ctx, c.retryDelay(retry, nil)); err != nil {
				return lastErr
			}
			continue
		}
		data, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if readErr != nil {
			lastErr = fmt.Errorf("wsanclient: reading %s %s: %w", method, u, readErr)
			if ctx.Err() != nil || retry >= c.retries {
				return lastErr
			}
			if err := sleepCtx(ctx, c.retryDelay(retry, nil)); err != nil {
				return lastErr
			}
			continue
		}
		if resp.StatusCode >= 400 {
			apiErr := decodeAPIError(resp.StatusCode, data)
			if !retryableStatus(resp.StatusCode) || retry >= c.retries {
				return apiErr
			}
			lastErr = apiErr
			if err := sleepCtx(ctx, c.retryDelay(retry, resp)); err != nil {
				return lastErr
			}
			continue
		}
		if out != nil && len(data) > 0 {
			if err := json.Unmarshal(data, out); err != nil {
				return fmt.Errorf("wsanclient: decoding %s %s response: %w", method, u, err)
			}
		}
		return nil
	}
}

// sleepCtx sleeps for d or until ctx is done, returning ctx.Err() in the
// latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// CreateNetwork registers a network with the daemon.
func (c *Client) CreateNetwork(ctx context.Context, req CreateNetworkRequest) (Network, error) {
	var nw Network
	err := c.do(ctx, http.MethodPost, c.url("networks"), req, &nw)
	return nw, err
}

// Networks lists the hosted networks.
func (c *Client) Networks(ctx context.Context) ([]Network, error) {
	var out struct {
		Networks []Network `json:"networks"`
	}
	err := c.do(ctx, http.MethodGet, c.url("networks"), nil, &out)
	return out.Networks, err
}

// Network describes one hosted network.
func (c *Client) Network(ctx context.Context, name string) (Network, error) {
	var nw Network
	err := c.do(ctx, http.MethodGet, c.url("networks", name), nil, &nw)
	return nw, err
}

// DeleteNetwork deregisters a network.
func (c *Client) DeleteNetwork(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, c.url("networks", name), nil, nil)
}

// SubmitJob submits one asynchronous job against a network. params is
// marshalled as the job's parameter document (nil uses the kind's
// defaults). The returned job may already be done when the daemon had the
// artifact cached.
func (c *Client) SubmitJob(ctx context.Context, network, kind string, params any) (Job, error) {
	body := struct {
		Kind   string `json:"kind"`
		Params any    `json:"params,omitempty"`
	}{Kind: kind, Params: params}
	var j Job
	err := c.do(ctx, http.MethodPost, c.url("networks", network, "jobs"), body, &j)
	return j, err
}

// Job fetches one job's current state.
func (c *Client) Job(ctx context.Context, id string) (Job, error) {
	var j Job
	err := c.do(ctx, http.MethodGet, c.url("jobs", id), nil, &j)
	return j, err
}

// Jobs fetches one page of the jobs list (submission order). Zero limit
// returns everything after the cursor; an empty after starts at the
// beginning.
func (c *Client) Jobs(ctx context.Context, after string, limit int) (JobPage, error) {
	u := c.url("jobs") + pageQuery(after, limit)
	var page JobPage
	err := c.do(ctx, http.MethodGet, u, nil, &page)
	return page, err
}

// AllJobs fetches the complete jobs list by following nextAfter cursors.
// pageSize ≤ 0 uses 200 per request. The daemon's cursor resumes strictly
// past the last seen ID, so the walk is duplicate-free even while jobs are
// being submitted concurrently.
func (c *Client) AllJobs(ctx context.Context, pageSize int) ([]Job, error) {
	if pageSize <= 0 {
		pageSize = defaultPageSize
	}
	var all []Job
	after := ""
	for {
		page, err := c.Jobs(ctx, after, pageSize)
		if err != nil {
			return all, err
		}
		all = append(all, page.Jobs...)
		if page.NextAfter == "" {
			return all, nil
		}
		after = page.NextAfter
	}
}

// CancelJob cancels a queued or running job.
func (c *Client) CancelJob(ctx context.Context, id string) (Job, error) {
	var j Job
	err := c.do(ctx, http.MethodDelete, c.url("jobs", id), nil, &j)
	return j, err
}

// WaitJob polls a job until it reaches a terminal state or ctx expires.
// interval ≤ 0 defaults to 250ms.
func (c *Client) WaitJob(ctx context.Context, id string, interval time.Duration) (Job, error) {
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	for {
		j, err := c.Job(ctx, id)
		if err != nil {
			return j, err
		}
		if j.State.Terminal() {
			return j, nil
		}
		if err := sleepCtx(ctx, interval); err != nil {
			return j, err
		}
	}
}

// Artifacts fetches one page of the artifacts list (ID order).
func (c *Client) Artifacts(ctx context.Context, after string, limit int) (ArtifactPage, error) {
	u := c.url("artifacts") + pageQuery(after, limit)
	var page ArtifactPage
	err := c.do(ctx, http.MethodGet, u, nil, &page)
	return page, err
}

// AllArtifacts fetches the complete artifacts list by following nextAfter
// cursors. pageSize ≤ 0 uses 200 per request. The cursor resumes strictly
// past the last seen ID, so an artifact evicted between pages never breaks
// or duplicates the walk.
func (c *Client) AllArtifacts(ctx context.Context, pageSize int) ([]ArtifactInfo, error) {
	if pageSize <= 0 {
		pageSize = defaultPageSize
	}
	var all []ArtifactInfo
	after := ""
	for {
		page, err := c.Artifacts(ctx, after, pageSize)
		if err != nil {
			return all, err
		}
		all = append(all, page.Artifacts...)
		if page.NextAfter == "" {
			return all, nil
		}
		after = page.NextAfter
	}
}

// Artifact fetches one artifact bundle with all parts embedded.
func (c *Client) Artifact(ctx context.Context, id string) (Artifact, error) {
	var a Artifact
	err := c.do(ctx, http.MethodGet, c.url("artifacts", id), nil, &a)
	return a, err
}

// ArtifactPart fetches one part's exact bytes — byte-identical to the file
// the wsansim CLI would have written.
func (c *Client) ArtifactPart(ctx context.Context, id, part string) ([]byte, error) {
	var raw json.RawMessage
	err := c.do(ctx, http.MethodGet, c.url("artifacts", id, part), nil, &raw)
	return raw, err
}

// Healthz fetches the daemon liveness document. The error is non-nil when
// the daemon is unreachable; a draining daemon responds (with status
// "draining") rather than erroring.
func (c *Client) Healthz(ctx context.Context) (map[string]any, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/healthz", nil)
	if err != nil {
		return nil, fmt.Errorf("wsanclient: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("wsanclient: %w", err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("wsanclient: decoding healthz: %w", err)
	}
	return out, nil
}

// Metrics fetches the daemon's live metrics snapshot — the same document
// /v1/metrics serves and `wsansim -metrics` prints.
func (c *Client) Metrics(ctx context.Context) (MetricsSnapshot, error) {
	var snap MetricsSnapshot
	err := c.do(ctx, http.MethodGet, c.url("metrics"), nil, &snap)
	return snap, err
}

// defaultPageSize is the per-request page size of the All* helpers.
const defaultPageSize = 200

// pageQuery encodes the cursor-pagination query parameters.
func pageQuery(after string, limit int) string {
	q := url.Values{}
	if after != "" {
		q.Set("after", after)
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if len(q) == 0 {
		return ""
	}
	return "?" + q.Encode()
}
