package wsanclient

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// envelope writes the v1 error envelope, as the daemon does.
func envelope(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, `{"error":{"code":%q,"message":%q}}`, code, msg)
}

func testClient(ts *httptest.Server, opts Options) *Client {
	if opts.RetryBackoff == 0 {
		opts.RetryBackoff = time.Millisecond
	}
	return New(ts.URL, opts)
}

func TestRetryTransientThenSucceed(t *testing.T) {
	var attempts atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/jobs/j1" {
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		if attempts.Add(1) <= 2 {
			envelope(w, http.StatusServiceUnavailable, "draining", "try later")
			return
		}
		json.NewEncoder(w).Encode(Job{ID: "j1", State: StateDone})
	}))
	defer ts.Close()

	c := testClient(ts, Options{MaxRetries: 3})
	job, err := c.Job(context.Background(), "j1")
	if err != nil {
		t.Fatal(err)
	}
	if job.ID != "j1" || job.State != StateDone {
		t.Fatalf("job = %+v", job)
	}
	if n := attempts.Load(); n != 3 {
		t.Fatalf("server saw %d attempts, want 3 (two 503s then success)", n)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	var attempts atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		attempts.Add(1)
		envelope(w, http.StatusBadGateway, "", "bad gateway")
	}))
	defer ts.Close()

	c := testClient(ts, Options{MaxRetries: 2})
	_, err := c.Job(context.Background(), "j1")
	var apiErr *APIError
	if !asAPIError(err, &apiErr) || apiErr.Status != http.StatusBadGateway {
		t.Fatalf("err = %v, want APIError 502", err)
	}
	if n := attempts.Load(); n != 3 {
		t.Fatalf("server saw %d attempts, want 3 (initial + 2 retries)", n)
	}
}

func TestNoRetryOnClientError(t *testing.T) {
	var attempts atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		attempts.Add(1)
		envelope(w, http.StatusNotFound, "not_found", "no job j9")
	}))
	defer ts.Close()

	c := testClient(ts, Options{})
	_, err := c.Job(context.Background(), "j9")
	if !IsNotFound(err) {
		t.Fatalf("err = %v, want not_found", err)
	}
	var apiErr *APIError
	if !asAPIError(err, &apiErr) || apiErr.Code != "not_found" || apiErr.Message != "no job j9" {
		t.Fatalf("envelope not decoded: %v", err)
	}
	if n := attempts.Load(); n != 1 {
		t.Fatalf("server saw %d attempts, want 1 (4xx is permanent)", n)
	}
}

func TestRetryHonorsRetryAfter(t *testing.T) {
	var attempts atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if attempts.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			envelope(w, http.StatusTooManyRequests, "queue_full", "queue full")
			return
		}
		json.NewEncoder(w).Encode(Job{ID: "j1", State: StateQueued})
	}))
	defer ts.Close()

	c := testClient(ts, Options{MaxRetries: 1})
	start := time.Now()
	if _, err := c.Job(context.Background(), "j1"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retried after %v, want >= ~1s from Retry-After", elapsed)
	}
}

func TestSubmitRetryResubmitsBody(t *testing.T) {
	var bodies atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Kind   string          `json:"kind"`
			Params json.RawMessage `json:"params"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Kind != "schedule" {
			t.Errorf("attempt %d: body not re-sent intact: %v (%+v)", bodies.Load()+1, err, req)
		}
		if bodies.Add(1) == 1 {
			envelope(w, http.StatusServiceUnavailable, "draining", "busy")
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(Job{ID: "j1", State: StateQueued, Kind: req.Kind})
	}))
	defer ts.Close()

	c := testClient(ts, Options{MaxRetries: 2})
	job, err := c.SubmitJob(context.Background(), "plant", KindSchedule, map[string]any{"flows": 5})
	if err != nil {
		t.Fatal(err)
	}
	if job.ID != "j1" || bodies.Load() != 2 {
		t.Fatalf("job %+v after %d attempts", job, bodies.Load())
	}
}

// sseEvent frames one event the way the daemon does.
func sseEvent(w http.ResponseWriter, seq uint64, typ, job string) {
	ev := Event{Seq: seq, Type: typ, Job: job, Network: "plant"}
	data, _ := json.Marshal(ev)
	if seq > 0 {
		fmt.Fprintf(w, "id: %d\n", seq)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", typ, data)
	w.(http.Flusher).Flush()
}

// TestStreamReconnectResume kills the SSE connection mid-stream and checks
// the client transparently reconnects with Last-Event-ID so no retained
// event is skipped or duplicated.
func TestStreamReconnectResume(t *testing.T) {
	var conns atomic.Int32
	var resumedFrom atomic.Value // string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/jobs/j1/events" {
			envelope(w, http.StatusNotFound, "not_found", r.URL.Path)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		w.(http.Flusher).Flush()
		switch conns.Add(1) {
		case 1:
			if lid := r.Header.Get("Last-Event-ID"); lid != "" {
				t.Errorf("first connection sent Last-Event-ID %q", lid)
			}
			sseEvent(w, 0, EventJobSnapshot, "j1")
			sseEvent(w, 3, EventJobQueued, "j1")
			sseEvent(w, 4, EventJobRunning, "j1")
			// Drop the connection without a terminal event: the client must
			// reconnect and resume after seq 4.
		default:
			resumedFrom.Store(r.Header.Get("Last-Event-ID"))
			sseEvent(w, 0, EventJobSnapshot, "j1")
			sseEvent(w, 7, EventManageHealth, "j1")
			sseEvent(w, 9, EventJobDone, "j1")
		}
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	c := testClient(ts, Options{})
	st, err := c.Watch(ctx, "j1")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	var types []string
	var seqs []uint64
	for ev := range st.Events() {
		types = append(types, ev.Type)
		if ev.Seq > 0 {
			seqs = append(seqs, ev.Seq)
		}
	}
	if err := st.Err(); err != nil {
		t.Fatalf("stream err: %v (got %v)", err, types)
	}
	if conns.Load() != 2 {
		t.Fatalf("server saw %d connections, want 2", conns.Load())
	}
	if got := resumedFrom.Load(); got != "4" {
		t.Fatalf("reconnect resumed from %v, want \"4\"", got)
	}
	wantSeqs := []uint64{3, 4, 7, 9}
	if len(seqs) != len(wantSeqs) {
		t.Fatalf("sequenced events %v, want %v (types %v)", seqs, wantSeqs, types)
	}
	for i := range wantSeqs {
		if seqs[i] != wantSeqs[i] {
			t.Fatalf("sequenced events %v, want %v", seqs, wantSeqs)
		}
	}
}

// TestStreamGivesUpAfterMaxRetries ends the stream with an error once
// consecutive reconnection attempts exhaust the budget.
func TestStreamGivesUpAfterMaxRetries(t *testing.T) {
	var conns atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		w.(http.Flusher).Flush()
		if conns.Add(1) == 1 {
			sseEvent(w, 0, EventJobSnapshot, "j1")
			sseEvent(w, 1, EventJobQueued, "j1")
		}
		// Every connection drops without a terminal event; reconnections
		// deliver nothing, so the failure budget is never reset.
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	c := testClient(ts, Options{})
	st, err := c.Subscribe(ctx, StreamOptions{Job: "j1", MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for range st.Events() {
	}
	if err := st.Err(); err == nil {
		t.Fatal("stream ended cleanly, want a reconnect-exhausted error")
	}
	if n := conns.Load(); n < 3 {
		t.Fatalf("server saw %d connections, want initial + 2 retries", n)
	}
}

// TestStreamBackoffResetsAfterDelivery checks that the reconnect failure
// budget — and with it the exponential backoff position — resets whenever a
// connection delivers an event. The server alternates connections that
// deliver one event with connections that deliver nothing, dropping every
// one; with MaxRetries=2 the stream survives six drops (far more than the
// budget) only because each delivery resets the count, then ends cleanly on
// the seventh connection's terminal event.
func TestStreamBackoffResetsAfterDelivery(t *testing.T) {
	var conns atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		w.(http.Flusher).Flush()
		switch n := conns.Add(1); {
		case n >= 7:
			sseEvent(w, uint64(n), EventJobDone, "j1")
		case n%2 == 1:
			// Odd connections deliver progress, then drop.
			sseEvent(w, uint64(n), EventJobRunning, "j1")
		default:
			// Even connections drop without delivering anything, burning
			// one reconnect attempt each.
		}
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	c := testClient(ts, Options{})
	st, err := c.Subscribe(ctx, StreamOptions{Job: "j1", MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var delivered int
	for range st.Events() {
		delivered++
	}
	if err := st.Err(); err != nil {
		t.Fatalf("stream err: %v — failure budget did not reset on delivery", err)
	}
	if n := conns.Load(); n != 7 {
		t.Fatalf("server saw %d connections, want 7 (six drops survived)", n)
	}
	if delivered != 4 {
		t.Fatalf("delivered %d events, want 4 (three progress + terminal)", delivered)
	}
}

// TestStreamResumeSurvivesConsecutiveDrops drops the connection twice in a
// row without delivering anything in between and checks every reconnect
// still resumes from the highest sequence number actually seen — an empty
// connection must not regress or clear Last-Event-ID.
func TestStreamResumeSurvivesConsecutiveDrops(t *testing.T) {
	var mu sync.Mutex
	var resumes []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		resumes = append(resumes, r.Header.Get("Last-Event-ID"))
		n := len(resumes)
		mu.Unlock()
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		w.(http.Flusher).Flush()
		switch n {
		case 1:
			sseEvent(w, 5, EventJobRunning, "j1")
			// Drop after seq 5.
		case 2, 3:
			// Two consecutive empty drops.
		default:
			sseEvent(w, 9, EventJobDone, "j1")
		}
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	c := testClient(ts, Options{})
	st, err := c.Watch(ctx, "j1")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var seqs []uint64
	for ev := range st.Events() {
		seqs = append(seqs, ev.Seq)
	}
	if err := st.Err(); err != nil {
		t.Fatalf("stream err: %v", err)
	}
	mu.Lock()
	got := append([]string(nil), resumes...)
	mu.Unlock()
	want := []string{"", "5", "5", "5"}
	if len(got) != len(want) {
		t.Fatalf("resume headers %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("connection %d resumed from %q, want %q (all: %q)", i+1, got[i], want[i], got)
		}
	}
	if len(seqs) != 2 || seqs[0] != 5 || seqs[1] != 9 {
		t.Fatalf("delivered seqs %v, want [5 9]", seqs)
	}
}

func TestSubscribeRejectsBadTarget(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		envelope(w, http.StatusNotFound, "not_found", "no job")
	}))
	defer ts.Close()

	c := testClient(ts, Options{})
	if _, err := c.Watch(context.Background(), "ghost"); !IsNotFound(err) {
		t.Fatalf("Watch(ghost) = %v, want not_found at the call site", err)
	}
}

// pagingStub serves a cursor-paginated artifact/job list from fixed ID
// sets, implementing the daemon's strictly-greater resume semantics.
func pagingStub(t *testing.T, artifactIDs, jobIDs []string) http.Handler {
	page := func(ids []string, after string, limit int) (out []string, next string) {
		start := 0
		for start < len(ids) && ids[start] <= after {
			start++
		}
		end := len(ids)
		if limit > 0 && start+limit < end {
			end = start + limit
		}
		out = ids[start:end]
		if end < len(ids) && len(out) > 0 {
			next = out[len(out)-1]
		}
		return out, next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		after := r.URL.Query().Get("after")
		limit := 0
		if raw := r.URL.Query().Get("limit"); raw != "" {
			fmt.Sscanf(raw, "%d", &limit)
		}
		w.Header().Set("Content-Type", "application/json")
		switch r.URL.Path {
		case "/v1/artifacts":
			ids, next := page(artifactIDs, after, limit)
			p := ArtifactPage{NextAfter: next}
			for _, id := range ids {
				p.Artifacts = append(p.Artifacts, ArtifactInfo{ID: id, Kind: "schedule"})
			}
			json.NewEncoder(w).Encode(p)
		case "/v1/jobs":
			ids, next := page(jobIDs, after, limit)
			p := JobPage{NextAfter: next}
			for _, id := range ids {
				p.Jobs = append(p.Jobs, Job{ID: id, State: StateDone})
			}
			json.NewEncoder(w).Encode(p)
		default:
			t.Errorf("unexpected path %s", r.URL.Path)
			envelope(w, http.StatusNotFound, "not_found", "no route")
		}
	})
}

func TestAllArtifactsFollowsCursors(t *testing.T) {
	ids := make([]string, 7)
	for i := range ids {
		ids[i] = fmt.Sprintf("%02x", i+1)
	}
	ts := httptest.NewServer(pagingStub(t, ids, nil))
	defer ts.Close()

	all, err := testClient(ts, Options{}).AllArtifacts(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(ids) {
		t.Fatalf("walked %d artifacts, want %d", len(all), len(ids))
	}
	for i, a := range all {
		if a.ID != ids[i] {
			t.Fatalf("artifact %d = %s, want %s", i, a.ID, ids[i])
		}
	}
}

func TestAllJobsFollowsCursors(t *testing.T) {
	ids := []string{"j1", "j2", "j3", "j4", "j5"}
	ts := httptest.NewServer(pagingStub(t, nil, ids))
	defer ts.Close()

	all, err := testClient(ts, Options{}).AllJobs(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(ids) {
		t.Fatalf("walked %d jobs, want %d", len(all), len(ids))
	}
	for i, j := range all {
		if j.ID != ids[i] {
			t.Fatalf("job %d = %s, want %s", i, j.ID, ids[i])
		}
	}
}

func TestMetricsSnapshot(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/metrics" {
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"counters":{"server.cache.hits":4},"gauges":{"server.cache.bytes":123.0}}`)
	}))
	defer ts.Close()

	snap, err := testClient(ts, Options{}).Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["server.cache.hits"] != 4 || snap.Gauges["server.cache.bytes"] != 123 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestCacheEvictionDecode(t *testing.T) {
	e := Event{Type: EventCacheEvict, Data: json.RawMessage(`{"id":"ab","kind":"schedule","bytes":64,"reason":"capacity"}`)}
	ev, err := e.CacheEvictionData()
	if err != nil {
		t.Fatal(err)
	}
	if ev.ID != "ab" || ev.Bytes != 64 || ev.Reason != "capacity" {
		t.Fatalf("eviction = %+v", ev)
	}
}

// TestManageHealthRebudgetDecode streams one manage.health event carrying
// the reliability re-budgeting fields through a stub daemon and checks the
// typed decode surfaces rebudget counts, rehabilitated channels, and the
// per-flow shortfall report.
func TestManageHealthRebudgetDecode(t *testing.T) {
	payload := `{"iteration":2,"health":"degraded","minPDR":0.91,"meanPDR":0.97,` +
		`"degradedLinks":1,"moved":0,"unmovable":0,"rerouted":0,` +
		`"blacklisted":[15],"rehabilitated":[16],"channels":[11,12,13,16],` +
		`"deltaChanges":6,"affectedDevices":4,` +
		`"rebudgeted":2,"retriesShed":3,"shedFlows":[7],` +
		`"shortfalls":[{"flow":7,"target":0.99,"predicted":0.942}]}`
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/jobs/j1/events" {
			envelope(w, http.StatusNotFound, "not_found", r.URL.Path)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		w.(http.Flusher).Flush()
		ev := Event{Seq: 1, Type: EventManageHealth, Job: "j1", Network: "plant",
			Data: json.RawMessage(payload)}
		data, _ := json.Marshal(ev)
		fmt.Fprintf(w, "id: 1\nevent: %s\ndata: %s\n\n", EventManageHealth, data)
		sseEvent(w, 2, EventJobDone, "j1")
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	st, err := testClient(ts, Options{}).Watch(ctx, "j1")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var mh *ManageHealth
	for ev := range st.Events() {
		if ev.Type != EventManageHealth {
			continue
		}
		m, err := ev.ManageHealthData()
		if err != nil {
			t.Fatal(err)
		}
		mh = &m
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if mh == nil {
		t.Fatal("no manage.health event seen")
	}
	if mh.Rebudgeted != 2 || mh.RetriesShed != 3 {
		t.Fatalf("rebudget fields = %+v", mh)
	}
	if len(mh.Rehabilitated) != 1 || mh.Rehabilitated[0] != 16 {
		t.Fatalf("rehabilitated = %v", mh.Rehabilitated)
	}
	if len(mh.ShedFlows) != 1 || mh.ShedFlows[0] != 7 {
		t.Fatalf("shedFlows = %v", mh.ShedFlows)
	}
	if len(mh.Shortfalls) != 1 {
		t.Fatalf("shortfalls = %+v", mh.Shortfalls)
	}
	sf := mh.Shortfalls[0]
	if sf.Flow != 7 || sf.Target != 0.99 || sf.Predicted != 0.942 {
		t.Fatalf("shortfall = %+v", sf)
	}
}
