package wsanclient

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// StreamOptions parameterizes an event subscription.
type StreamOptions struct {
	// Job filters the stream to one job (the per-job endpoint); empty
	// subscribes to the firehose.
	Job string
	// AfterSeq resumes the stream after a sequence number on the FIRST
	// connection (reconnections always resume from the last event seen).
	AfterSeq uint64
	// Buffer is the delivery channel capacity (default 64). A consumer
	// falling this far behind blocks the stream reader — the daemon then
	// applies its own drop policy server-side.
	Buffer int
	// MaxRetries bounds consecutive failed reconnection attempts before
	// the stream gives up (default 5; a successful connection resets the
	// count). The backoff between attempts follows the client's retry
	// configuration.
	MaxRetries int
}

// Stream is one live event subscription: a channel of decoded events fed
// by a background goroutine that transparently reconnects on connection
// loss, resuming after the last event it delivered via Last-Event-ID.
type Stream struct {
	events chan Event
	done   chan struct{}
	cancel context.CancelFunc
	err    error // written once before done closes
}

// Events returns the delivery channel. It is closed when the stream ends —
// after Close, a terminal event on a per-job stream, or a permanent error
// (check Err).
func (s *Stream) Events() <-chan Event { return s.events }

// Done returns a channel closed when the stream has fully ended.
func (s *Stream) Done() <-chan struct{} { return s.done }

// Err reports why the stream ended: nil for a clean end (Close called, or
// a per-job stream delivering its terminal event), the terminal error
// otherwise. Valid after the Events channel closes.
func (s *Stream) Err() error {
	select {
	case <-s.done:
		return s.err
	default:
		return nil
	}
}

// Close terminates the subscription and releases its connection. Safe to
// call multiple times and concurrently with channel reads.
func (s *Stream) Close() {
	s.cancel()
	<-s.done
}

// Subscribe opens a live event stream. The returned Stream's channel
// delivers events in order; the subscription survives connection loss by
// reconnecting with Last-Event-ID resume, so no retained event is skipped
// (events evicted from the daemon's bounded replay ring between reconnects
// surface as sequence-number gaps). Cancel ctx or call Close to end it.
func (c *Client) Subscribe(ctx context.Context, opts StreamOptions) (*Stream, error) {
	buf := opts.Buffer
	if buf <= 0 {
		buf = 64
	}
	maxRetries := opts.MaxRetries
	if maxRetries <= 0 {
		maxRetries = 5
	}
	sctx, cancel := context.WithCancel(ctx)
	s := &Stream{
		events: make(chan Event, buf),
		done:   make(chan struct{}),
		cancel: cancel,
	}
	u := c.url("events")
	if opts.Job != "" {
		u = c.url("jobs", opts.Job, "events")
	}

	// Verify the subscription once synchronously so a bad job ID or an
	// unreachable daemon fails at the call site, not asynchronously.
	resp, err := c.connectStream(sctx, u, opts.AfterSeq)
	if err != nil {
		cancel()
		close(s.events)
		close(s.done)
		return nil, err
	}

	go s.run(c, resp, u, opts.AfterSeq, maxRetries)
	return s, nil
}

// Watch subscribes to one job's stream — Subscribe with the job filter.
func (c *Client) Watch(ctx context.Context, jobID string) (*Stream, error) {
	return c.Subscribe(ctx, StreamOptions{Job: jobID})
}

// connectStream opens one SSE connection, resuming after lastSeq.
func (c *Client) connectStream(ctx context.Context, u string, lastSeq uint64) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("wsanclient: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set("Cache-Control", "no-cache")
	if lastSeq > 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprintf("%d", lastSeq))
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("wsanclient: %s: %w", u, err)
	}
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		resp.Body.Close()
		return nil, decodeAPIError(resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		resp.Body.Close()
		return nil, fmt.Errorf("wsanclient: %s responded %q, want text/event-stream", u, ct)
	}
	return resp, nil
}

// run relays events from SSE connections to the stream channel until the
// context ends, a per-job stream completes, or reconnection fails
// maxRetries times in a row.
func (s *Stream) run(c *Client, resp *http.Response, u string, lastSeq uint64, maxRetries int) {
	defer close(s.done)
	defer close(s.events)
	ctx := reqContext(resp)
	failures := 0
	for {
		delivered, last, err := s.relay(ctx, resp)
		if delivered > 0 {
			failures = 0
		}
		if last > lastSeq {
			lastSeq = last
		}
		if err == nil {
			// Clean end: per-job terminal event delivered, or Close/ctx.
			return
		}
		if ctx.Err() != nil {
			return // Close or caller cancellation: a clean end
		}
		// Connection lost mid-stream: reconnect with resume.
		for {
			failures++
			if failures > maxRetries {
				s.err = fmt.Errorf("wsanclient: stream lost after %d reconnect attempts: %w", maxRetries, err)
				return
			}
			if serr := sleepCtx(ctx, c.retryDelay(failures-1, nil)); serr != nil {
				return
			}
			next, cerr := c.connectStream(ctx, u, lastSeq)
			if cerr == nil {
				// Connecting alone does not clear the failure budget — only
				// delivered events do (top of the outer loop). A daemon that
				// accepts the connection and immediately drops it would
				// otherwise keep a doomed stream alive forever.
				resp = next
				break
			}
			if ctx.Err() != nil {
				return
			}
			err = cerr
		}
	}
}

// reqContext extracts the context an http.Response's request carried.
func reqContext(resp *http.Response) context.Context {
	if resp.Request != nil {
		return resp.Request.Context()
	}
	return context.Background()
}

// relay decodes one SSE connection until it ends. It returns how many
// events it delivered, the highest sequence number seen, and the
// connection error (nil when the stream ended cleanly: a per-job terminal
// event arrived or the body closed without error).
func (s *Stream) relay(ctx context.Context, resp *http.Response) (delivered int, lastSeq uint64, err error) {
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var dataBuf strings.Builder
	flush := func() (bool, error) {
		if dataBuf.Len() == 0 {
			return false, nil
		}
		payload := dataBuf.String()
		dataBuf.Reset()
		var ev Event
		if jerr := json.Unmarshal([]byte(payload), &ev); jerr != nil {
			return false, fmt.Errorf("wsanclient: undecodable event %q: %w", payload, jerr)
		}
		if ev.Seq > lastSeq {
			lastSeq = ev.Seq
		}
		select {
		case s.events <- ev:
		case <-ctx.Done():
			return false, nil
		}
		delivered++
		return TerminalEvent(ev.Type), nil
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			terminal, ferr := flush()
			if ferr != nil {
				return delivered, lastSeq, ferr
			}
			if terminal {
				// SSE id lines already advanced lastSeq; a terminal event
				// ends a per-job stream cleanly. Firehose streams never see
				// their connection closed right after one, so the server
				// keeps it open and we keep scanning.
				if resp.Request != nil && strings.Contains(resp.Request.URL.Path, "/jobs/") {
					return delivered, lastSeq, nil
				}
			}
		case strings.HasPrefix(line, ":"):
			// Heartbeat comment.
		case strings.HasPrefix(line, "data:"):
			dataBuf.WriteString(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		default:
			// id:/event: lines duplicate fields inside the data document;
			// the decoder takes them from there.
		}
	}
	if _, ferr := flush(); ferr != nil {
		return delivered, lastSeq, ferr
	}
	if serr := sc.Err(); serr != nil && ctx.Err() == nil {
		return delivered, lastSeq, fmt.Errorf("wsanclient: stream read: %w", serr)
	}
	if ctx.Err() != nil {
		return delivered, lastSeq, nil
	}
	// EOF without a terminal event: the daemon closed the stream (shutdown
	// or proxy timeout) — report it so run() reconnects.
	return delivered, lastSeq, io.ErrUnexpectedEOF
}

// WatchUntilDone subscribes to a job, invokes fn for every event, and
// returns the job's final view when the terminal event arrives. A nil fn
// just waits. Convenience for CLI-style consumers.
func (c *Client) WatchUntilDone(ctx context.Context, jobID string, fn func(Event)) (Job, error) {
	st, err := c.Watch(ctx, jobID)
	if err != nil {
		return Job{}, err
	}
	defer st.Close()
	var final Job
	sawTerminal := false
	for ev := range st.Events() {
		if fn != nil {
			fn(ev)
		}
		if ev.Type == EventJobSnapshot || strings.HasPrefix(ev.Type, "job.") {
			if j, jerr := ev.JobData(); jerr == nil {
				final = j
			}
		}
		if TerminalEvent(ev.Type) || (ev.Type == EventJobSnapshot && final.State.Terminal()) {
			sawTerminal = true
			break
		}
	}
	if serr := st.Err(); serr != nil {
		return final, serr
	}
	if !sawTerminal && ctx.Err() != nil {
		return final, ctx.Err()
	}
	if !sawTerminal {
		// Stream ended cleanly without a terminal event (daemon shutdown):
		// fall back to one poll for the final state.
		return c.Job(ctx, jobID)
	}
	return final, nil
}
