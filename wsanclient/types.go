// Package wsanclient is the typed Go client of the wsan network-manager
// daemon's v1 REST+SSE API (the surface `wsansim serve` exposes).
//
// The client covers the full API: network registration, asynchronous job
// submission with completion polling, artifact retrieval, and the live
// telemetry stream (job lifecycle transitions, per-iteration manage health
// verdicts, fault events, metrics deltas) with automatic reconnection and
// Last-Event-ID resume. Transient failures — connection errors, 429 with
// Retry-After, 502/503/504 — are retried with bounded exponential backoff.
//
// The wire types mirror the daemon's responses structurally but are
// declared here, so importing the client never links the scheduling and
// simulation pipeline into a consumer binary.
package wsanclient

import (
	"encoding/json"
	"fmt"
	"time"
)

// JobState is a job's lifecycle state on the wire.
type JobState string

// Job lifecycle states.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state ends a job's lifecycle.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job kinds accepted by SubmitJob.
const (
	KindSchedule   = "schedule"
	KindSimulate   = "simulate"
	KindConverge   = "converge"
	KindManage     = "manage"
	KindReschedule = "reschedule"
	KindSoak       = "soak"
)

// CreateNetworkRequest is the POST /v1/networks body. Exactly one of
// Preset and Testbed selects the topology source.
type CreateNetworkRequest struct {
	Name         string          `json:"name"`
	Preset       string          `json:"preset,omitempty"`
	TopoSeed     int64           `json:"toposeed,omitempty"`
	Testbed      json.RawMessage `json:"testbed,omitempty"`
	Channels     int             `json:"channels,omitempty"`
	PRRThreshold float64         `json:"prrThreshold,omitempty"`
	AccessPoints int             `json:"accessPoints,omitempty"`
}

// Network describes one hosted network.
type Network struct {
	Name          string    `json:"name"`
	Hash          string    `json:"hash"`
	Nodes         int       `json:"nodes"`
	Channels      []int     `json:"channels"`
	AccessPoints  []int     `json:"accessPoints"`
	CommEdges     int       `json:"commEdges"`
	ReuseDiameter int       `json:"reuseDiameter"`
	Created       time.Time `json:"created"`
}

// Job is the daemon's view of one asynchronous job.
type Job struct {
	ID       string     `json:"id"`
	Network  string     `json:"network"`
	Kind     string     `json:"kind"`
	State    JobState   `json:"state"`
	Cached   bool       `json:"cached"`
	Retries  int        `json:"retries,omitempty"`
	Artifact string     `json:"artifact,omitempty"`
	Error    string     `json:"error,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

// JobPage is one page of the jobs list. NextAfter, when non-empty, is the
// ?after= cursor of the next page.
type JobPage struct {
	Jobs      []Job  `json:"jobs"`
	NextAfter string `json:"nextAfter,omitempty"`
}

// ArtifactInfo describes one stored artifact (parts by name only; fetch
// content with Client.ArtifactPart or Client.Artifact).
type ArtifactInfo struct {
	ID      string    `json:"id"`
	Kind    string    `json:"kind"`
	Created time.Time `json:"created"`
	Parts   []string  `json:"parts"`
}

// ArtifactPage is one page of the artifacts list.
type ArtifactPage struct {
	Artifacts []ArtifactInfo `json:"artifacts"`
	NextAfter string         `json:"nextAfter,omitempty"`
}

// Artifact is one artifact bundle with every part's document embedded.
type Artifact struct {
	ID      string                     `json:"id"`
	Kind    string                     `json:"kind"`
	Created time.Time                  `json:"created"`
	Parts   map[string]json.RawMessage `json:"parts"`
}

// Event is one entry of the daemon's telemetry stream. Seq is strictly
// increasing per daemon; a gap between consecutive events on one
// subscription means the daemon dropped events for this consumer.
type Event struct {
	Seq     uint64          `json:"seq"`
	Type    string          `json:"type"`
	Time    time.Time       `json:"time"`
	Network string          `json:"network,omitempty"`
	Job     string          `json:"job,omitempty"`
	Data    json.RawMessage `json:"data,omitempty"`
}

// Event types of the v1 stream.
const (
	EventJobQueued    = "job.queued"
	EventJobRunning   = "job.running"
	EventJobDone      = "job.done"
	EventJobFailed    = "job.failed"
	EventJobCancelled = "job.cancelled"
	EventJobSnapshot  = "job.snapshot"
	EventManageHealth = "manage.health"
	EventFaultCounts  = "faults.applied"
	EventSoakProgress = "soak.progress"
	EventMetricsDelta = "metrics.delta"
	EventCacheEvict   = "cache.evicted"
)

// TerminalEvent reports whether typ marks the end of a job's lifecycle.
func TerminalEvent(typ string) bool {
	return typ == EventJobDone || typ == EventJobFailed || typ == EventJobCancelled
}

// JobData decodes the event's Data as a job view (lifecycle and snapshot
// events carry one).
func (e Event) JobData() (Job, error) {
	var j Job
	err := json.Unmarshal(e.Data, &j)
	return j, err
}

// ManageHealthData decodes the event's Data as a manage.health payload.
func (e Event) ManageHealthData() (ManageHealth, error) {
	var m ManageHealth
	err := json.Unmarshal(e.Data, &m)
	return m, err
}

// CacheEviction is the Data of an EventCacheEvict event: one artifact the
// daemon's store evicted, by the byte budget ("capacity") or by expiry
// ("ttl").
type CacheEviction struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Bytes  int64  `json:"bytes"`
	Reason string `json:"reason"`
}

// CacheEvictionData decodes the event's Data as a cache.evicted payload.
func (e Event) CacheEvictionData() (CacheEviction, error) {
	var ev CacheEviction
	err := json.Unmarshal(e.Data, &ev)
	return ev, err
}

// MetricsSnapshot is the daemon's /v1/metrics document: monotonic counters,
// point-in-time gauges, and histogram summaries.
type MetricsSnapshot struct {
	Counters   map[string]int64            `json:"counters"`
	Gauges     map[string]float64          `json:"gauges,omitempty"`
	Histograms map[string]HistogramSummary `json:"histograms,omitempty"`
	Events     map[string]int64            `json:"events,omitempty"`
}

// HistogramSummary is the serialized summary of one metrics histogram.
type HistogramSummary struct {
	Count  int64   `json:"count"`
	Sum    float64 `json:"sum"`
	Min    float64 `json:"min"`
	Mean   float64 `json:"mean"`
	Max    float64 `json:"max"`
	Stddev float64 `json:"stddev"`
}

// ManageHealth is one manage-loop iteration's health verdict plus the
// recovery actions taken (the Data of an EventManageHealth event).
type ManageHealth struct {
	Iteration       int     `json:"iteration"`
	Health          string  `json:"health"` // "healthy", "degraded", "recovered"
	MinPDR          float64 `json:"minPDR"`
	MeanPDR         float64 `json:"meanPDR"`
	DegradedLinks   int     `json:"degradedLinks"`
	DegradedFlows   []int   `json:"degradedFlows,omitempty"`
	Moved           int     `json:"moved"`
	Unmovable       int     `json:"unmovable"`
	Rerouted        int     `json:"rerouted"`
	SuspectNodes    []int   `json:"suspectNodes,omitempty"`
	Blacklisted     []int   `json:"blacklisted,omitempty"`
	Rehabilitated   []int   `json:"rehabilitated,omitempty"`
	Channels        []int   `json:"channels"`
	DeltaChanges    int     `json:"deltaChanges"`
	AffectedDevices int     `json:"affectedDevices"`

	// Reliability re-budgeting outcome of the iteration. Zero values when
	// the workload carries no delivery-probability targets.
	Rebudgeted  int             `json:"rebudgeted,omitempty"`
	RetriesShed int             `json:"retriesShed,omitempty"`
	ShedFlows   []int           `json:"shedFlows,omitempty"`
	Shortfalls  []FlowShortfall `json:"shortfalls,omitempty"`
}

// SoakProgress is a live throughput snapshot of a running soak job (the
// Data of an EventSoakProgress event). Duration fields are nanoseconds on
// the wire.
type SoakProgress struct {
	Ops          int           `json:"ops"`
	Applied      int           `json:"applied"`
	Infeasible   int           `json:"infeasible"`
	Skipped      int           `json:"skipped"`
	ActiveFlows  int           `json:"activeFlows"`
	DeltasPerSec float64       `json:"deltasPerSec"`
	P99          time.Duration `json:"p99Ns"`
	FallbackRate float64       `json:"fallbackRate"`
	Elapsed      time.Duration `json:"elapsedNs"`
}

// SoakProgressData decodes the event's Data as a soak.progress payload.
func (e Event) SoakProgressData() (SoakProgress, error) {
	var p SoakProgress
	err := json.Unmarshal(e.Data, &p)
	return p, err
}

// SoakResult is the result.json part of a soak-job artifact: churn
// throughput, apply-latency percentiles, repair-ladder fallback counts,
// replay-oracle checkpoints, and the canonical schedule digest. Duration
// fields are nanoseconds on the wire.
type SoakResult struct {
	Flows      int `json:"flows"`
	Channels   int `json:"channels"`
	Nodes      int `json:"nodes"`
	HyperSlots int `json:"hyperSlots"`

	WarmupAdmitted int `json:"warmupAdmitted"`
	WarmupFailed   int `json:"warmupFailed"`

	Ops        int `json:"ops"`
	Applied    int `json:"applied"`
	Infeasible int `json:"infeasible"`
	Skipped    int `json:"skipped"`
	Batches    int `json:"batches"`

	Adds      int `json:"adds"`
	Removes   int `json:"removes"`
	Reroutes  int `json:"reroutes"`
	Rebudgets int `json:"rebudgets"`

	FallbackEvict   int `json:"fallbackEvict"`
	FallbackCascade int `json:"fallbackCascade"`
	FallbackFull    int `json:"fallbackFull"`

	ActiveFlows int `json:"activeFlows"`
	PlacedTx    int `json:"placedTx"`

	DeltasPerSec float64       `json:"deltasPerSec"`
	P50          time.Duration `json:"p50Ns"`
	P95          time.Duration `json:"p95Ns"`
	P99          time.Duration `json:"p99Ns"`
	Max          time.Duration `json:"maxNs"`

	OracleChecks int    `json:"oracleChecks"`
	Digest       string `json:"digest"`

	HeapStartBytes uint64 `json:"heapStartBytes"`
	HeapEndBytes   uint64 `json:"heapEndBytes"`

	Elapsed time.Duration `json:"elapsedNs"`
}

// FlowShortfall is one reliability shortfall inside a ManageHealth event: a
// targeted flow whose best-effort retransmission budget cannot reach its
// delivery-probability target under the observed link PRRs.
type FlowShortfall struct {
	Flow      int     `json:"flow"`
	Target    float64 `json:"target"`
	Predicted float64 `json:"predicted"`
}

// APIError is a non-2xx daemon response decoded from the v1 error envelope
// {"error":{"code":"...","message":"..."}}.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the machine-readable error code ("not_found", "queue_full",
	// "invalid_request", "conflict", "draining", "internal").
	Code string
	// Message is the human-readable description.
	Message string
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("wsanclient: %s (HTTP %d, code %s)", e.Message, e.Status, e.Code)
}

// IsNotFound reports whether err is an APIError with code "not_found".
func IsNotFound(err error) bool { return hasCode(err, "not_found") }

// IsConflict reports whether err is an APIError with code "conflict".
func IsConflict(err error) bool { return hasCode(err, "conflict") }

func hasCode(err error, code string) bool {
	var ae *APIError
	if ok := asAPIError(err, &ae); ok {
		return ae.Code == code
	}
	return false
}
